"""Executing a parallel plan on real Wisconsin data.

The simulator predicts performance; this example demonstrates
*correctness*: it generates a real (scaled-down) Wisconsin database,
executes the same parallel schedules the simulator times — with actual
hash redistribution and the actual simple/pipelining hash-join
algorithms per processor — and checks that all four strategies return
the exact same bag of tuples as the sequential reference.

Run:  python examples/wisconsin_workload.py
"""

from repro import make_query_relations, run
from repro.core import Catalog, make_shape, paper_relation_names
from repro.engine import reference_result
from repro.relational import skew

CARDINALITY = 1000
PROCESSORS = 12


def main() -> None:
    names = paper_relation_names(10)
    relations = dict(zip(names, make_query_relations(10, CARDINALITY, seed=1)))
    catalog = Catalog.regular(names, CARDINALITY)
    tree = make_shape("right_bushy", names)
    reference = reference_result(tree, relations)
    print(
        f"query: 10-way Wisconsin join, {CARDINALITY} tuples/relation, "
        f"right-oriented bushy tree, {PROCESSORS} processors"
    )
    print(f"reference result: {reference.cardinality()} tuples\n")

    for name in ("SP", "SE", "RD", "FP"):
        result = run(
            tree, name, PROCESSORS, "local",
            catalog=catalog, relations=relations,
        )
        matches = result.relation.same_bag(reference)
        worst_skew = max(
            skew(task.fragments) for task in result.tasks if task.fragments
        )
        print(
            f"{name}: {result.relation.cardinality()} tuples, "
            f"matches reference: {matches}, "
            f"worst fragment skew {worst_skew:.2f}"
        )
        if not matches:
            raise SystemExit(f"strategy {name} produced a wrong result!")

    print("\nall four strategies compute the identical result — the")
    print("response-time differences in the figures are purely about")
    print("parallel execution, exactly as the paper designs it.")


if __name__ == "__main__":
    main()
