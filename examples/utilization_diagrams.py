"""The paper's Section 3 processor-utilization diagrams (Figs. 3/4/6/7).

Runs the Figure 2 example tree (joins labelled with relative work
1/5/3/4) on an idealized 10-processor machine under each strategy and
renders the processor-utilization diagrams the paper uses to explain
the strategies' tradeoffs: SP's perfect blocks, SE's discretization
hole, RD's pipeline that cannot be saturated, FP's waiting top join.

Run:  python examples/utilization_diagrams.py [processors]
"""

import sys

from repro.core import example_tree, render
from repro.engine import ideal_diagram

FIGURES = {"SP": 3, "SE": 4, "RD": 6, "FP": 7}


def main(processors: int = 10) -> None:
    print("The example join tree (Figure 2; labels = relative work):\n")
    print(render(example_tree()))
    print()
    for strategy, figure in FIGURES.items():
        print(f"--- Figure {figure} ---")
        print(ideal_diagram(strategy, processors, width=64))
        print()


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 10)
