"""Tour of the reproduction's extensions beyond the paper's figures.

Four analyses the paper states qualitatively, made quantitative here:

1. memory — "RD uses less memory than FP" (§5) and "the 40K query was
   too large to run on fewer than 30 processors" (§4.2);
2. mirroring — right-orienting a left-oriented tree for free makes RD
   competitive (§5), using the partial-rewrite transformation;
3. skew — the non-skew assumption (§3.5/§4.1), relaxed with Zipfian
   fragment shares;
4. critical path — which joins actually gate the response time.

Run:  python examples/extensions_tour.py
"""

from repro.core import (
    Catalog,
    get_strategy,
    make_shape,
    memory_report,
    minimum_processors,
    paper_relation_names,
    right_orient,
)
from repro.engine import critical_path
from repro.sim import MachineConfig
from repro.sim.run import simulate

NAMES = paper_relation_names(10)
CAT_40K = Catalog.regular(NAMES, 40000)


def main() -> None:
    print("=== 1. memory: why the 40K sweeps start at 30 processors ===")
    tree = make_shape("wide_bushy", NAMES)
    for name in ("SP", "RD", "FP"):
        floor = minimum_processors(get_strategy(name), tree, CAT_40K)
        print(f"  {name}: smallest machine that fits the 40K query: {floor} nodes")
    print()
    print(memory_report(get_strategy("FP").schedule(tree, CAT_40K, 30), CAT_40K))

    print("\n=== 2. mirroring: RD on the left-oriented bushy tree ===")
    left_tree = make_shape("left_bushy", NAMES)
    oriented = right_orient(left_tree)
    for label, t in (("as written", left_tree), ("right-oriented", oriented)):
        result = simulate(
            get_strategy("RD").schedule(t, CAT_40K, 80), CAT_40K
        )
        print(f"  RD, {label:>15}: {result.response_time:6.2f}s")

    print("\n=== 3. skew: relaxing the non-skew assumption ===")
    schedule_sp = get_strategy("SP").schedule(tree, CAT_40K, 40)
    schedule_fp = get_strategy("FP").schedule(tree, CAT_40K, 40)
    for theta in (0.0, 0.5, 1.0):
        sp = simulate(schedule_sp, CAT_40K, skew_theta=theta)
        fp = simulate(schedule_fp, CAT_40K, skew_theta=theta)
        print(
            f"  Zipf theta={theta:3.1f}: SP {sp.response_time:6.2f}s, "
            f"FP {fp.response_time:6.2f}s"
        )

    print("\n=== 4. critical path of an SP execution ===")
    result = simulate(schedule_sp, CAT_40K)
    chain = critical_path(result)
    print(
        "  response gated by joins "
        + " <- ".join(f"J{mark.index}@{mark.completion:.1f}s" for mark in chain)
    )


if __name__ == "__main__":
    main()
