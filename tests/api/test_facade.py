"""The unified repro.api.run facade: golden equivalence with the four
legacy front-ends, backend dispatch, and argument policing."""

import pytest

from repro import api
from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.core.shapes import example_tree
from repro.engine.ideal import ideal_simulation
from repro.engine.local import execute_schedule
from repro.engine.simulate import simulate_strategy
from repro.engine.threaded import execute_threaded
from repro.relational.query import wisconsin_resolution
from repro.sim import MachineConfig

NAMES10 = paper_relation_names(10)


class TestGoldenEquivalence:
    """run() must reproduce each legacy front-end byte for byte."""

    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    def test_sim_matches_simulate_strategy(self, strategy, fast_config):
        tree = make_shape("wide_bushy", NAMES10)
        catalog = Catalog.regular(NAMES10, 2000)
        legacy = simulate_strategy(
            tree, catalog, strategy, 20, config=fast_config
        )
        facade = api.run(
            tree, strategy, 20, catalog=catalog, config=fast_config
        )
        assert facade.summary() == legacy.summary()
        assert facade.response_time == legacy.response_time
        assert facade.events == legacy.events

    def test_sim_shape_name_builds_paper_defaults(self, fast_config):
        """A shape name means: ten relations, 5K regular catalog."""
        tree = make_shape("left_linear", NAMES10)
        catalog = Catalog.regular(NAMES10, 5000)
        legacy = simulate_strategy(tree, catalog, "SE", 30, config=fast_config)
        facade = api.run("left_linear", "SE", 30, config=fast_config)
        assert facade.summary() == legacy.summary()

    def test_sim_skew_threads_through(self, fast_config):
        tree = make_shape("wide_bushy", NAMES10)
        catalog = Catalog.regular(NAMES10, 2000)
        legacy = simulate_strategy(
            tree, catalog, "SP", 20, config=fast_config, skew_theta=0.7
        )
        facade = api.run(
            tree, "SP", 20, catalog=catalog, config=fast_config,
            skew_theta=0.7,
        )
        assert facade.summary() == legacy.summary()
        assert facade.response_time > api.run(
            tree, "SP", 20, catalog=catalog, config=fast_config
        ).response_time

    def test_ideal_matches_ideal_simulation(self):
        legacy = ideal_simulation(example_tree(), "FP", 10)
        facade = api.run(example_tree(), "FP", 10, "ideal", cardinality=1000)
        assert facade.summary() == legacy.summary()
        assert facade.config == MachineConfig.ideal()

    def test_local_matches_execute_schedule(self, relations6, catalog6, names6):
        tree = make_shape("wide_bushy", names6)
        schedule = get_strategy("SE").schedule(tree, catalog6, 6)
        legacy = execute_schedule(schedule, relations6)
        facade = api.run(
            tree, "SE", 6, "local", catalog=catalog6, relations=relations6
        )
        assert facade.relation.same_bag(legacy.relation)
        assert len(facade.tasks) == len(legacy.tasks)

    def test_threaded_matches_execute_threaded(
        self, relations6, catalog6, names6
    ):
        tree = make_shape("right_bushy", names6)
        schedule = get_strategy("RD").schedule(tree, catalog6, 5)
        legacy = execute_threaded(
            schedule, relations6, timeout=30, resolve=wisconsin_resolution
        )
        facade = api.run(
            tree, "RD", 5, "threaded", catalog=catalog6,
            relations=relations6, resolve=wisconsin_resolution, timeout=30,
        )
        assert facade.same_bag(legacy)

    def test_strategy_instance_accepted(self, fast_config):
        from repro.core.strategies import FullParallel

        by_name = api.run("wide_bushy", "FP", 20, config=fast_config)
        by_instance = api.run(
            "wide_bushy", FullParallel(), 20, config=fast_config
        )
        assert by_instance.summary() == by_name.summary()


class TestBackendDefaults:
    def test_sim_default_config_is_paper(self):
        result = api.run("left_linear", "SP", 20)
        assert result.config == MachineConfig.paper()

    def test_local_generates_wisconsin_data(self):
        result = api.run("wide_bushy", "SE", 4, "local", cardinality=100)
        # Decorrelated Wisconsin joins keep the base cardinality.
        assert len(result.relation) == 100

    def test_threaded_generated_data_uses_wisconsin_semantics(self):
        result = api.run("left_linear", "SP", 4, "threaded", cardinality=100)
        assert len(result) == 100


class TestArgumentPolicing:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            api.run("wide_bushy", "FP", 40, "quantum")

    def test_unknown_shape(self):
        with pytest.raises(ValueError, match="unknown shape"):
            api.run("narrow_bushy", "FP", 40)

    def test_tree_type_checked(self):
        with pytest.raises(TypeError, match="shape name or a Node"):
            api.run(42, "FP", 40)

    def test_sim_rejects_relations(self, relations6):
        with pytest.raises(ValueError, match="simulates"):
            api.run("wide_bushy", "FP", 40, relations=relations6)

    def test_local_rejects_config(self, fast_config):
        with pytest.raises(ValueError, match="real data"):
            api.run(
                "wide_bushy", "SE", 4, "local",
                cardinality=100, config=fast_config,
            )

    def test_local_rejects_skew(self):
        with pytest.raises(ValueError, match="skew"):
            api.run(
                "wide_bushy", "SE", 4, "local",
                cardinality=100, skew_theta=0.5,
            )

    def test_local_rejects_resolve(self):
        with pytest.raises(ValueError, match="threaded"):
            api.run(
                "wide_bushy", "SE", 4, "local",
                cardinality=100, resolve=wisconsin_resolution,
            )


class TestTimeout:
    """``timeout`` is honored where it can be and warned about where
    it can't — never silently ignored (regression: it used to be
    accepted and dropped by every backend but 'threaded').  Old
    callers that passed the pre-facade default (timeout=60.0) keep
    working for now; the warning says it will become an error."""

    @pytest.mark.parametrize("backend", ["sim", "ideal", "local"])
    def test_non_threaded_backends_warn_on_timeout(self, backend):
        with pytest.warns(DeprecationWarning, match="threaded"):
            result = api.run(
                "wide_bushy", "SE", 4, backend,
                cardinality=100, timeout=5.0,
            )
        assert result is not None

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            api.run(
                "left_linear", "SP", 4, "threaded",
                cardinality=100, timeout=0.0,
            )

    def test_warned_timeout_is_dropped_not_applied(self):
        """On a non-threaded backend the warned-about timeout is
        discarded entirely: the result is identical to a run that never
        passed one (regression guard for the warn-then-ignore path)."""
        plain = api.run("wide_bushy", "SE", 12, "sim", cardinality=200)
        with pytest.warns(DeprecationWarning, match="threaded"):
            timed = api.run(
                "wide_bushy", "SE", 12, "sim",
                cardinality=200, timeout=1e-9,
            )
        assert timed == plain

    def test_non_threaded_warns_before_validating(self):
        """A nonsensical timeout on a non-threaded backend still takes
        the warn-and-drop path — it must not raise the threaded
        backend's positivity error."""
        with pytest.warns(DeprecationWarning, match="threaded"):
            result = api.run(
                "wide_bushy", "SE", 12, "sim",
                cardinality=200, timeout=-5.0,
            )
        assert result is not None

    def test_threaded_receives_the_bound(self, monkeypatch):
        """The value reaches the executor verbatim (it used to be
        dropped on the floor)."""
        import repro.engine.threaded as threaded

        seen = {}

        def fake(schedule, relations, timeout, resolve):
            seen["timeout"] = timeout
            raise TimeoutError("as if the bound fired")

        monkeypatch.setattr(threaded, "execute_threaded", fake)
        with pytest.raises(TimeoutError):
            api.run(
                "left_linear", "SP", 4, "threaded",
                cardinality=50, timeout=2.5,
            )
        assert seen["timeout"] == 2.5

    def test_threaded_defaults_to_sixty_seconds(self, monkeypatch):
        import repro.engine.threaded as threaded

        seen = {}

        def fake(schedule, relations, timeout, resolve):
            seen["timeout"] = timeout
            raise TimeoutError("captured")

        monkeypatch.setattr(threaded, "execute_threaded", fake)
        with pytest.raises(TimeoutError):
            api.run("left_linear", "SP", 4, "threaded", cardinality=50)
        assert seen["timeout"] == 60.0


class TestDeprecatedAliases:
    """The old repro.engine names still work, but say so."""

    def test_simulate_strategy_warns(self, fast_config):
        import repro.engine as engine

        tree = make_shape("wide_bushy", NAMES10)
        catalog = Catalog.regular(NAMES10, 2000)
        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            legacy = engine.simulate_strategy(
                tree, catalog, "SE", 20, config=fast_config
            )
        assert legacy.summary() == api.run(
            tree, "SE", 20, catalog=catalog, config=fast_config
        ).summary()

    def test_ideal_simulation_warns(self):
        import repro.engine as engine

        with pytest.warns(DeprecationWarning, match="repro.api.run"):
            engine.ideal_simulation(example_tree(), "SP", 10)

    def test_undecorated_implementations_do_not_warn(self, recwarn):
        simulate_strategy(
            make_shape("left_linear", NAMES10),
            Catalog.regular(NAMES10, 1000),
            "SP",
            10,
        )
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_top_level_run_is_the_facade(self):
        import repro

        assert repro.run is api.run
        assert repro.sweep is api.sweep
