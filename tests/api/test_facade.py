"""The unified repro.api.run facade: golden equivalence with the four
legacy front-ends, backend dispatch, and argument policing."""

import pytest

from repro import api
from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.core.shapes import example_tree
from repro.engine.ideal import ideal_simulation
from repro.engine.local import execute_schedule
from repro.engine.simulate import simulate_strategy
from repro.engine.threaded import execute_threaded
from repro.relational.query import wisconsin_resolution
from repro.sim import MachineConfig

NAMES10 = paper_relation_names(10)


class TestGoldenEquivalence:
    """run() must reproduce each legacy front-end byte for byte."""

    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    def test_sim_matches_simulate_strategy(self, strategy, fast_config):
        tree = make_shape("wide_bushy", NAMES10)
        catalog = Catalog.regular(NAMES10, 2000)
        legacy = simulate_strategy(
            tree, catalog, strategy, 20, config=fast_config
        )
        facade = api.run(
            tree, strategy, 20, catalog=catalog, config=fast_config
        )
        assert facade.summary() == legacy.summary()
        assert facade.response_time == legacy.response_time
        assert facade.events == legacy.events

    def test_sim_shape_name_builds_paper_defaults(self, fast_config):
        """A shape name means: ten relations, 5K regular catalog."""
        tree = make_shape("left_linear", NAMES10)
        catalog = Catalog.regular(NAMES10, 5000)
        legacy = simulate_strategy(tree, catalog, "SE", 30, config=fast_config)
        facade = api.run("left_linear", "SE", 30, config=fast_config)
        assert facade.summary() == legacy.summary()

    def test_sim_skew_threads_through(self, fast_config):
        tree = make_shape("wide_bushy", NAMES10)
        catalog = Catalog.regular(NAMES10, 2000)
        legacy = simulate_strategy(
            tree, catalog, "SP", 20, config=fast_config, skew_theta=0.7
        )
        facade = api.run(
            tree, "SP", 20, catalog=catalog, config=fast_config,
            skew_theta=0.7,
        )
        assert facade.summary() == legacy.summary()
        assert facade.response_time > api.run(
            tree, "SP", 20, catalog=catalog, config=fast_config
        ).response_time

    def test_ideal_matches_ideal_simulation(self):
        legacy = ideal_simulation(example_tree(), "FP", 10)
        facade = api.run(example_tree(), "FP", 10, "ideal", cardinality=1000)
        assert facade.summary() == legacy.summary()
        assert facade.config == MachineConfig.ideal()

    def test_local_matches_execute_schedule(self, relations6, catalog6, names6):
        tree = make_shape("wide_bushy", names6)
        schedule = get_strategy("SE").schedule(tree, catalog6, 6)
        legacy = execute_schedule(schedule, relations6)
        facade = api.run(
            tree, "SE", 6, "local", catalog=catalog6, relations=relations6
        )
        assert facade.relation.same_bag(legacy.relation)
        assert len(facade.tasks) == len(legacy.tasks)

    def test_threaded_matches_execute_threaded(
        self, relations6, catalog6, names6
    ):
        tree = make_shape("right_bushy", names6)
        schedule = get_strategy("RD").schedule(tree, catalog6, 5)
        legacy = execute_threaded(
            schedule, relations6, timeout=30, resolve=wisconsin_resolution
        )
        facade = api.run(
            tree, "RD", 5, "threaded", catalog=catalog6,
            relations=relations6, resolve=wisconsin_resolution, timeout=30,
        )
        assert facade.same_bag(legacy)

    def test_strategy_instance_accepted(self, fast_config):
        from repro.core.strategies import FullParallel

        by_name = api.run("wide_bushy", "FP", 20, config=fast_config)
        by_instance = api.run(
            "wide_bushy", FullParallel(), 20, config=fast_config
        )
        assert by_instance.summary() == by_name.summary()


class TestBackendDefaults:
    def test_sim_default_config_is_paper(self):
        result = api.run("left_linear", "SP", 20)
        assert result.config == MachineConfig.paper()

    def test_local_generates_wisconsin_data(self):
        result = api.run("wide_bushy", "SE", 4, "local", cardinality=100)
        # Decorrelated Wisconsin joins keep the base cardinality.
        assert len(result.relation) == 100

    def test_threaded_generated_data_uses_wisconsin_semantics(self):
        result = api.run("left_linear", "SP", 4, "threaded", cardinality=100)
        assert len(result) == 100


class TestArgumentPolicing:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            api.run("wide_bushy", "FP", 40, "quantum")

    def test_unknown_shape(self):
        with pytest.raises(ValueError, match="unknown shape"):
            api.run("narrow_bushy", "FP", 40)

    def test_tree_type_checked(self):
        with pytest.raises(TypeError, match="shape name or a Node"):
            api.run(42, "FP", 40)

    def test_sim_rejects_relations(self, relations6):
        with pytest.raises(ValueError, match="simulates"):
            api.run("wide_bushy", "FP", 40, relations=relations6)

    def test_local_rejects_config(self, fast_config):
        with pytest.raises(ValueError, match="real data"):
            api.run(
                "wide_bushy", "SE", 4, "local",
                cardinality=100, config=fast_config,
            )

    def test_local_rejects_skew(self):
        with pytest.raises(ValueError, match="skew"):
            api.run(
                "wide_bushy", "SE", 4, "local",
                cardinality=100, skew_theta=0.5,
            )

    def test_local_rejects_resolve(self):
        with pytest.raises(ValueError, match="threaded"):
            api.run(
                "wide_bushy", "SE", 4, "local",
                cardinality=100, resolve=wisconsin_resolution,
            )


class TestTimeout:
    """``timeout`` is honored where it can be and an error where it
    can't — never silently ignored.  The v1 freeze graduated the
    one-release DeprecationWarning into a hard ValueError."""

    @pytest.mark.parametrize("backend", ["sim", "ideal", "local"])
    def test_non_threaded_backends_reject_timeout(self, backend):
        with pytest.raises(ValueError, match="threaded"):
            api.run(
                "wide_bushy", "SE", 4, backend,
                cardinality=100, timeout=5.0,
            )

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            api.run(
                "left_linear", "SP", 4, "threaded",
                cardinality=100, timeout=0.0,
            )

    def test_rejection_message_points_at_deadline(self):
        """The error teaches the migration: simulated-time bounds are
        spelled ``deadline`` on the simulating backends."""
        with pytest.raises(ValueError, match="deadline"):
            api.run(
                "wide_bushy", "SE", 12, "sim",
                cardinality=200, timeout=1e-9,
            )

    def test_non_threaded_rejects_before_positivity_check(self):
        """A nonsensical timeout on a non-threaded backend fails with
        the backend-applicability error, not the threaded backend's
        positivity error."""
        with pytest.raises(ValueError, match="threaded"):
            api.run(
                "wide_bushy", "SE", 12, "sim",
                cardinality=200, timeout=-5.0,
            )

    def test_threaded_receives_the_bound(self, monkeypatch):
        """The value reaches the executor verbatim (it used to be
        dropped on the floor)."""
        import repro.engine.threaded as threaded

        seen = {}

        def fake(schedule, relations, timeout, resolve):
            seen["timeout"] = timeout
            raise TimeoutError("as if the bound fired")

        monkeypatch.setattr(threaded, "execute_threaded", fake)
        with pytest.raises(TimeoutError):
            api.run(
                "left_linear", "SP", 4, "threaded",
                cardinality=50, timeout=2.5,
            )
        assert seen["timeout"] == 2.5

    def test_threaded_defaults_to_sixty_seconds(self, monkeypatch):
        import repro.engine.threaded as threaded

        seen = {}

        def fake(schedule, relations, timeout, resolve):
            seen["timeout"] = timeout
            raise TimeoutError("captured")

        monkeypatch.setattr(threaded, "execute_threaded", fake)
        with pytest.raises(TimeoutError):
            api.run("left_linear", "SP", 4, "threaded", cardinality=50)
        assert seen["timeout"] == 60.0


class TestRemovedAliases:
    """The old repro.engine names are frozen out: importable (so the
    error can teach the migration) but calling them raises."""

    @pytest.mark.parametrize(
        "name",
        ["simulate_strategy", "execute_schedule",
         "execute_threaded", "ideal_simulation"],
    )
    def test_every_alias_raises_pointing_at_the_facade(self, name):
        import repro.engine as engine

        with pytest.raises(RuntimeError, match=r"repro\.api\.run"):
            getattr(engine, name)()

    def test_error_names_the_engine_submodule_escape_hatch(self):
        import repro.engine as engine

        with pytest.raises(RuntimeError, match="repro.engine.simulate"):
            engine.simulate_strategy(
                make_shape("wide_bushy", NAMES10),
                Catalog.regular(NAMES10, 2000),
                "SE",
                20,
            )

    def test_undecorated_implementations_still_run(self, recwarn):
        simulate_strategy(
            make_shape("left_linear", NAMES10),
            Catalog.regular(NAMES10, 1000),
            "SP",
            10,
        )
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]

    def test_top_level_run_is_the_facade(self):
        import repro

        assert repro.run is api.run
        assert repro.sweep is api.sweep


class TestFrozenKeywordSurface:
    """Unknown keywords fail with the full accepted-key list (shared
    validation helper of the v1 freeze)."""

    def test_run_rejects_unknown_keyword_with_accepted_list(self):
        with pytest.raises(TypeError, match="accepted keywords.*deadline"):
            api.run("wide_bushy", "SE", 4, cardinality=100, timeot=5.0)

    def test_run_workload_rejects_unknown_keyword_with_accepted_list(self):
        with pytest.raises(TypeError, match="accepted keywords.*watchdog_limit"):
            api.run_workload("wide_bushy", ratee=2.0)

    def test_error_names_every_offender(self):
        with pytest.raises(TypeError, match="bogus.*wrong"):
            api.run("wide_bushy", "SE", 4, bogus=1, wrong=2)

    def test_frozen_tuples_match_the_signatures(self):
        import inspect

        run_kw = [
            p.name
            for p in inspect.signature(api.run).parameters.values()
            if p.kind is inspect.Parameter.KEYWORD_ONLY
        ]
        assert run_kw == list(api.RUN_KEYWORDS)
        wl_kw = [
            p.name
            for p in inspect.signature(api.run_workload).parameters.values()
            if p.kind is inspect.Parameter.KEYWORD_ONLY
        ]
        assert wl_kw == list(api.RUN_WORKLOAD_KEYWORDS)
