"""Request lifecycle: deadlines, load shedding, cancellation, and the
livelock watchdog — on the shared-machine workload engine."""

import pytest

from repro import api
from repro.sim import WatchdogError
from repro.workload import (
    DeadlineAwarePolicy,
    DropNewestPolicy,
    DropOldestPolicy,
    OverloadPoint,
    QueryMix,
    QuerySpec,
    SHED_POLICY_NAMES,
    WorkloadEngine,
    make_shed_policy,
    overload_sweep,
)

SMALL = QuerySpec("wide_bushy", 200, "SE", 4)


def small_engine(fast_config, **kwargs):
    return WorkloadEngine(8, config=fast_config, **kwargs)


def burst(n, spacing=0.0):
    return [(index * spacing, SMALL) for index in range(n)]


class TestDeadlineIdentity:
    """deadline=None and a deadline every query beats must be
    bit-for-bit invisible: same rows, same makespan."""

    def test_none_and_generous_deadline_rows_identical(self, fast_config):
        arrivals = burst(6, spacing=2.0)
        plain = small_engine(fast_config).run_open(arrivals)
        explicit = small_engine(fast_config, deadline=None).run_open(arrivals)
        generous = small_engine(fast_config, deadline=1e9).run_open(arrivals)
        assert explicit.rows() == plain.rows()
        assert generous.rows() == plain.rows()
        assert generous.makespan == plain.makespan
        assert generous.goodput() == plain.throughput()

    def test_row_omits_the_deadline_value(self, fast_config):
        """The deadline is configuration (like queue_limit), not an
        outcome — it must not appear in the emitted JSONL."""
        result = small_engine(fast_config, deadline=1e9).run_open(burst(1))
        row = result.records[0].row()
        assert "deadline" not in row
        assert row["shed"] is None
        assert row["cancelled"] is False
        assert row["deadline_missed"] is False


class TestDeadlineEnforcement:
    def test_running_query_aborted_at_deadline(self, fast_config):
        baseline = small_engine(fast_config).run_open(burst(1))
        service = baseline.records[0].service_time
        engine = small_engine(fast_config, deadline=service / 2)
        record = engine.run_open(burst(1)).records[0]
        assert record.failed
        assert record.deadline_missed
        assert record.shed is None
        assert record.completed is None
        assert "deadline" in record.error
        assert record.wasted_seconds > 0
        # ``aborts`` tracks crash-retry attempts only; a deadline abort
        # is terminal, not retried.
        assert record.aborts == []

    def test_queued_query_expires_at_deadline(self, fast_config):
        """Exclusive whole machine: the second query sits queued past
        its deadline and is expired, never admitted."""
        baseline = small_engine(fast_config).run_open(burst(1))
        service = baseline.records[0].service_time
        engine = small_engine(fast_config, deadline=service / 2)
        result = engine.run_open([(0.0, SMALL), (0.0, SMALL)])
        second = result.records[1]
        assert second.shed == "expired"
        assert second.deadline_missed
        assert second.admitted is None
        assert second.wasted_seconds == 0
        assert result.expired_count() == 1
        # Both missed: one aborted mid-run, one expired in the queue.
        assert result.deadline_missed_count() == 2
        assert result.deadline_aborted_count() == 1
        assert result.goodput() == 0.0

    def test_spec_deadline_overrides_engine_default(self, fast_config):
        tight = QuerySpec("wide_bushy", 200, "SE", 4, deadline=0.001)
        engine = small_engine(fast_config, deadline=1e9)
        result = engine.run_open([(0.0, SMALL), (5_000.0, tight)])
        assert result.records[0].completed is not None
        assert result.records[1].deadline_missed

    def test_deadline_range_is_deterministic_per_seed(self, fast_config):
        def run(seed):
            engine = small_engine(
                fast_config, deadline=(0.5, 500.0), deadline_seed=seed
            )
            return engine.run_open(burst(8, spacing=1.0))

        first, second = run(3), run(3)
        assert first.rows() == second.rows()
        assert [r.deadline for r in first.records] == [
            r.deadline for r in second.records
        ]
        other = run(4)
        assert [r.deadline for r in other.records] != [
            r.deadline for r in first.records
        ]

    def test_closed_loop_with_deadline_terminates(self, fast_config):
        engine = small_engine(fast_config, deadline=1.0)
        mix = QueryMix.single(SMALL)
        result = engine.run_closed(mix, 2, queries_per_client=3, seed=1)
        assert len(result.records) == 6
        assert all(
            r.completed is not None or r.deadline_missed
            for r in result.records
        )

    def test_validation(self, fast_config):
        with pytest.raises(ValueError, match="deadline"):
            small_engine(fast_config, deadline=0.0)
        with pytest.raises(ValueError, match="deadline"):
            small_engine(fast_config, deadline=-2.0)
        with pytest.raises(ValueError, match="lo <= hi"):
            small_engine(fast_config, deadline=(3.0, 1.0))
        with pytest.raises(ValueError, match="lo <= hi"):
            small_engine(fast_config, deadline=(0.0, 1.0))


class TestShedPolicies:
    def test_make_shed_policy(self):
        assert make_shed_policy(None) is None
        assert isinstance(make_shed_policy("drop_newest"), DropNewestPolicy)
        assert isinstance(make_shed_policy("drop_oldest"), DropOldestPolicy)
        assert isinstance(
            make_shed_policy("deadline_aware"), DeadlineAwarePolicy
        )
        policy = DropOldestPolicy()
        assert make_shed_policy(policy) is policy
        with pytest.raises(ValueError, match="drop_newest"):
            make_shed_policy("drop_oldish")
        assert set(SHED_POLICY_NAMES) == {
            "drop_newest", "drop_oldest", "deadline_aware"
        }

    def test_drop_newest_is_a_strict_noop(self, fast_config):
        """Explicit drop_newest IS the bare queue_limit bounce — one
        code path, bit-for-bit identical rows."""
        arrivals = burst(6)
        plain = small_engine(fast_config, queue_limit=1).run_open(arrivals)
        explicit = small_engine(
            fast_config, queue_limit=1, shed="drop_newest"
        ).run_open(arrivals)
        assert explicit.rows() == plain.rows()
        assert plain.shed_counts() == {"drop_newest": 4}

    def test_drop_oldest_evicts_the_queue_head(self, fast_config):
        engine = small_engine(fast_config, queue_limit=1, shed="drop_oldest")
        result = engine.run_open(burst(3))
        first, second, third = result.records
        # First runs; second queues; the third arrival evicts it.
        assert second.shed == "drop_oldest"
        assert second.rejected
        assert third.completed is not None
        assert result.shed_counts() == {"drop_oldest": 1}

    def test_deadline_aware_sheds_doomed_arrivals(self, fast_config):
        baseline = small_engine(fast_config).run_open(burst(1))
        service = baseline.records[0].service_time
        deadline = 1.5 * service
        admit_all = small_engine(fast_config, deadline=deadline)
        collapsed = admit_all.run_open(burst(8))
        aware = small_engine(
            fast_config, deadline=deadline, shed="deadline_aware"
        ).run_open(burst(8))
        # Without shedding every queued query blows its deadline.
        assert collapsed.deadline_missed_count() > 0
        # Predictive admission sheds the doomed ones up front instead.
        assert aware.shed_counts().get("deadline_aware", 0) > 0
        shed = [r for r in aware.records if r.shed == "deadline_aware"]
        assert all(r.admitted is None for r in shed)
        assert all("shed at admission" in r.error for r in shed)
        assert aware.deadline_miss_rate() in (None, 0.0)
        assert aware.goodput() >= collapsed.goodput()

    def test_deadline_aware_without_deadlines_admits_everything(
        self, fast_config
    ):
        """No deadline → nothing is doomed → the policy never sheds."""
        arrivals = burst(5)
        plain = small_engine(fast_config).run_open(arrivals)
        aware = small_engine(fast_config, shed="deadline_aware").run_open(
            arrivals
        )
        assert aware.rows() == plain.rows()


class TestCancellation:
    def test_cancel_queued_query(self, fast_config):
        engine = small_engine(fast_config)
        engine.cancel_at(0.01, 1, "caller changed its mind")
        result = engine.run_open(burst(2))
        second = result.records[1]
        assert second.cancelled
        assert second.admitted is None
        assert second.error == "caller changed its mind"
        assert result.cancelled_count() == 1
        # The machine is not left wedged: the first query completed.
        assert result.records[0].completed is not None

    def test_cancel_active_query_unwinds_the_simulation(self, fast_config):
        baseline = small_engine(fast_config).run_open(burst(1))
        service = baseline.records[0].service_time
        engine = small_engine(fast_config)
        engine.cancel_at(service / 2, 0)
        result = engine.run_open(burst(2))
        first, second = result.records
        assert first.cancelled
        assert first.completed is None
        assert first.wasted_seconds > 0
        # Its slot was released: the second query still completes.
        assert second.completed is not None
        assert result.makespan == pytest.approx(service / 2 + service)

    def test_cancel_terminal_is_a_false_noop(self, fast_config):
        engine = small_engine(fast_config)
        result = engine.run_open(burst(1))
        assert result.records[0].completed is not None
        assert engine.cancel(0) is False
        assert not engine.records[0].cancelled

    def test_cancel_out_of_range_index_is_ignored(self, fast_config):
        engine = small_engine(fast_config)
        engine.cancel_at(0.5, 99)
        result = engine.run_open(burst(1))
        assert result.records[0].completed is not None

    def test_cancelled_query_frees_its_deadline_event(self, fast_config):
        """Cancelling must disarm the pending deadline: the record may
        not be double-terminated when the deadline instant passes."""
        engine = small_engine(fast_config, deadline=1e9)
        engine.cancel_at(0.01, 0)
        result = engine.run_open(burst(1))
        record = result.records[0]
        assert record.cancelled
        assert not record.deadline_missed
        assert result.makespan < 1e9

    def test_api_run_workload_cancellations(self, fast_config):
        result = api.run_workload(
            "wide_bushy",
            arrivals="poisson",
            rate=0.05,
            duration=100.0,
            seed=3,
            machine_size=8,
            strategy="SE",
            cardinality=200,
            config=fast_config,
            cancellations=[(0.01, 0)],
        )
        assert result.records[0].cancelled
        assert result.cancelled_count() == 1


class TestWatchdogRegression:
    def test_zero_retry_delay_livelock_aborts_with_diagnostic(
        self, fast_config
    ):
        """The PR 2 livelock class: zero-think-time closed-loop clients
        bouncing off a full queue and resubmitting at the rejection
        instant.  With the retry-delay fix reverted, the watchdog must
        abort with an engine-state diagnostic instead of hanging."""
        engine = small_engine(
            fast_config, queue_limit=0, watchdog_limit=500
        )
        engine.rejected_retry_delay = 0.0  # revert the fix, in-test only
        mix = QueryMix.single(SMALL)
        with pytest.raises(WatchdogError) as excinfo:
            engine.run_closed(mix, 2, think_time=0.0, duration=50.0)
        message = str(excinfo.value)
        assert "livelock" in message
        assert "engine state at trip" in message
        assert "in flight" in message

    def test_watchdog_can_be_disarmed(self, fast_config):
        engine = small_engine(fast_config, watchdog_limit=None)
        assert engine.machine.clock.watchdog is None
        result = engine.run_open(burst(2))
        assert len(result.completed()) == 2

    def test_armed_watchdog_leaves_results_identical(self, fast_config):
        arrivals = burst(4)
        armed = small_engine(fast_config).run_open(arrivals)
        disarmed = small_engine(fast_config, watchdog_limit=None).run_open(
            arrivals
        )
        assert armed.rows() == disarmed.rows()
        assert armed.makespan == disarmed.makespan


class TestLifecycleMetrics:
    def test_lifecycle_summary_keys(self, fast_config):
        result = small_engine(fast_config).run_open(burst(2))
        summary = result.lifecycle_summary()
        for key in ("shed", "expired", "cancelled", "deadline_missed",
                    "deadline_aborted", "miss_rate_completed", "goodput"):
            assert key in summary
        assert summary["shed"] == 0
        assert summary["miss_rate_completed"] is None
        assert summary["goodput"] == result.throughput()

    def test_miss_rate_counts_only_completed_queries(self, fast_config):
        """deadline_miss_rate is the service-quality lens: of the
        queries that *completed*, how many blew their bound.  Enforced
        deadlines abort instead, so the rate is 0, not None."""
        baseline = small_engine(fast_config).run_open(burst(1))
        service = baseline.records[0].service_time
        engine = small_engine(fast_config, deadline=2.0 * service)
        result = engine.run_open(burst(2))
        assert len(result.completed()) >= 1
        assert result.deadline_miss_rate() == 0.0

    def test_summary_mentions_lifecycle_activity(self, fast_config):
        engine = small_engine(fast_config, deadline=0.001)
        result = engine.run_open(burst(1))
        assert "lifecycle:" in result.summary()
        plain = small_engine(fast_config).run_open(burst(1))
        assert "lifecycle:" not in plain.summary()


class TestOverloadSweep:
    def test_sweep_grid_and_point_rows(self, fast_config):
        points = overload_sweep(
            strategies=("SE",),
            loads=(0.05, 0.2),
            sheds=(None, "deadline_aware"),
            deadline=30.0,
            duration=60.0,
            machine_size=8,
            seed=5,
            queue_limit=4,
            cardinality=200,
            config=fast_config,
        )
        assert len(points) == 4
        assert all(isinstance(p, OverloadPoint) for p in points)
        by_key = {(p.load, p.shed): p for p in points}
        assert set(by_key) == {
            (0.05, None), (0.05, "deadline_aware"),
            (0.2, None), (0.2, "deadline_aware"),
        }
        row = points[0].row()
        for key in ("strategy", "load", "shed", "offered", "completed",
                    "goodput", "miss_rate", "utilization"):
            assert key in row
