"""Allocation policies against a live shared machine."""

import pytest

from repro.core import CostModel, num_joins
from repro.sim import MachineConfig
from repro.workload import (
    ExclusivePolicy,
    GuidelinePolicy,
    QuerySpec,
    RoundRobinPolicy,
    SharedMachine,
    make_policy,
)

MODEL = CostModel()


def machine(size=8):
    return SharedMachine(size, MachineConfig.paper())


def allocate(policy, spec, m):
    return policy.allocate(spec, spec.tree(), spec.catalog(), m, MODEL)


SPEC = QuerySpec("wide_bushy", 200, "SE", 4)


class TestExclusive:
    def test_whole_machine_by_default(self):
        allocation = allocate(ExclusivePolicy(), SPEC, machine())
        assert allocation.processors == tuple(range(8))
        assert allocation.exclusive

    def test_claims_lowest_free_ids(self):
        m = machine()
        m.claim([0, 2])
        allocation = allocate(ExclusivePolicy(3), SPEC, m)
        assert allocation.processors == (1, 3, 4)

    def test_waits_when_short_of_processors(self):
        m = machine()
        m.claim(range(6))
        assert allocate(ExclusivePolicy(4), SPEC, m) is None

    def test_fp_needs_one_processor_per_join(self):
        fp = QuerySpec("wide_bushy", 200, "FP", 10)  # nine joins
        with pytest.raises(ValueError, match="FP"):
            allocate(ExclusivePolicy(4), fp, machine())

    def test_share_validation(self):
        with pytest.raises(ValueError):
            ExclusivePolicy(0)


class TestRoundRobin:
    def test_never_refuses_and_time_shares(self):
        policy = RoundRobinPolicy(3)
        m = machine()
        first = allocate(policy, SPEC, m)
        second = allocate(policy, SPEC, m)
        third = allocate(policy, SPEC, m)
        assert first.processors == (0, 1, 2)
        assert second.processors == (3, 4, 5)
        assert third.processors == (6, 7, 0)  # wraps around the pool
        assert not first.exclusive

    def test_share_clipped_to_machine(self):
        allocation = allocate(RoundRobinPolicy(64), SPEC, machine(4))
        assert len(allocation.processors) == 4

    def test_share_required_and_positive(self):
        with pytest.raises(ValueError):
            RoundRobinPolicy(0)
        with pytest.raises(ValueError, match="share"):
            make_policy("round_robin")


class TestGuideline:
    def test_sizes_from_the_square_root_law(self):
        allocation = allocate(GuidelinePolicy(), SPEC, machine(16))
        assert 1 <= len(allocation.processors) <= 16
        assert allocation.exclusive

    def test_resolves_auto_strategy(self):
        auto = QuerySpec("wide_bushy", 200, "auto", 4)
        allocation = allocate(GuidelinePolicy(), auto, machine(16))
        assert allocation.strategy in ("SP", "SE", "RD", "FP")

    def test_grants_at_least_the_join_count_when_it_fits(self):
        allocation = allocate(GuidelinePolicy(), SPEC, machine(16))
        assert len(allocation.processors) >= min(num_joins(SPEC.tree()), 16)

    def test_waits_when_short(self):
        m = machine(16)
        m.claim(range(15))
        assert allocate(GuidelinePolicy(), SPEC, m) is None


class TestFactory:
    def test_names(self):
        assert make_policy("exclusive").name == "exclusive"
        assert make_policy("round_robin", 4).name == "round_robin"
        assert make_policy("guideline").name == "guideline"

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("lottery")
