"""Hosted-epoch fast path: byte-identity and eligibility.

Turbo v2 lets the workload engine execute a *single-occupancy epoch* —
exactly one unperturbed, deadline-free query in flight, no foreign
clock event before its completion — analytically instead of draining
the event heap.  The contract is the house invariant: the fast path is
pure performance, so every row, float, and ordering must be
byte-identical with the fast path on or off, at every worker count,
with and without tenants and schedulers.  ``fast_path_queries`` is the
only observable allowed to differ (it counts replayed epochs and lives
outside the JSONL rows).
"""

import json

from repro import api
from repro.runner import SweepSpec, WorkloadTraffic, run_sweep
from repro.sim import MachineConfig
from repro.sim import turbo

FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)


def rows_json(result):
    return json.dumps(result.rows(), sort_keys=True)


def run_pair(**kwargs):
    """One workload with the fast path on and off, caches cold."""
    turbo.clear_cache()
    on = api.run_workload(fast_path=True, **kwargs)
    turbo.clear_cache()
    off = api.run_workload(fast_path=False, **kwargs)
    return on, off


class TestByteIdentity:
    def test_open_poisson_identical(self):
        on, off = run_pair(
            mix_or_shape="wide_bushy", arrivals="poisson", rate=0.2,
            duration=40.0, seed=7, machine_size=12, policy="exclusive",
            strategy="FP", cardinality=400, config=FAST,
        )
        assert rows_json(on) == rows_json(off)
        assert off.fast_path_queries == 0

    def test_closed_loop_identical(self):
        on, off = run_pair(
            mix_or_shape="paper", arrivals="closed", clients=3,
            think_time=2.0, queries_per_client=3, duration=500.0,
            seed=11, machine_size=12, policy="round_robin", share=6,
            strategy="SE", cardinality=300, config=FAST,
        )
        assert rows_json(on) == rows_json(off)

    def test_scheduler_and_tenants_identical(self):
        tenants = {
            "tenants": [
                {"name": "gold", "weight": 3.0, "rate": 0.15},
                {"name": "bronze", "weight": 1.0, "rate": 0.15},
            ]
        }
        on, off = run_pair(
            mix_or_shape="wide_bushy", arrivals="poisson", duration=40.0,
            seed=5, machine_size=12, policy="exclusive", strategy="FP",
            cardinality=300, config=FAST, scheduler="wfq", tenants=tenants,
        )
        assert rows_json(on) == rows_json(off)

    def test_deadline_identical_and_ineligible(self):
        """Deadline-bearing queries never fast-path (a deadline abort
        mid-epoch cannot be replayed), and stay byte-identical."""
        on, off = run_pair(
            mix_or_shape="wide_bushy", arrivals="closed", clients=1,
            think_time=1.0, queries_per_client=4, duration=1e6, seed=3,
            machine_size=12, policy="exclusive", strategy="FP",
            cardinality=300, config=FAST, deadline=500.0,
        )
        assert rows_json(on) == rows_json(off)
        assert on.fast_path_queries == 0


class TestEligibility:
    def test_single_occupancy_closed_loop_replays_every_query(self):
        """clients=1 + exclusive: every epoch is single-occupancy, so
        every completed query must ride the fast path."""
        turbo.clear_cache()
        result = api.run_workload(
            "wide_bushy", arrivals="closed", clients=1, think_time=1.0,
            queries_per_client=5, duration=1e6, seed=3, machine_size=12,
            policy="exclusive", strategy="FP", cardinality=300, config=FAST,
        )
        assert result.fast_path_queries == len(result.completed()) == 5
        assert turbo.cache_stats()["hosted_rollbacks"] == 0

    def test_fast_path_off_never_replays(self):
        turbo.clear_cache()
        result = api.run_workload(
            "wide_bushy", arrivals="closed", clients=1, think_time=1.0,
            queries_per_client=3, duration=1e6, seed=3, machine_size=12,
            policy="exclusive", strategy="FP", cardinality=300,
            config=FAST, fast_path=False,
        )
        assert result.fast_path_queries == 0
        assert turbo.cache_stats()["hosted_runs"] == 0

    def test_overlapping_queries_fall_back(self):
        """Many clients with zero think time overlap from t=0: the
        engine must decline or roll back, never corrupt."""
        turbo.clear_cache()
        on, off = run_pair(
            mix_or_shape="wide_bushy", arrivals="closed", clients=4,
            think_time=0.0, queries_per_client=3, duration=1e6, seed=3,
            machine_size=12, policy="round_robin", share=6,
            strategy="SE", cardinality=300, config=FAST,
        )
        assert rows_json(on) == rows_json(off)

    def test_summary_reports_fast_path(self):
        turbo.clear_cache()
        result = api.run_workload(
            "wide_bushy", arrivals="closed", clients=1, think_time=1.0,
            queries_per_client=2, duration=1e6, seed=3, machine_size=12,
            policy="exclusive", strategy="FP", cardinality=300, config=FAST,
        )
        assert "fast path: 2 queries" in result.summary()


class TestRunnerFanout:
    """The fast path must survive the runner's process-pool fan-out:
    identical JSONL at workers=1 and workers=4, fast path on or off,
    and one shared cache address for both settings."""

    def spec(self, fast_path):
        return SweepSpec(
            shapes=("wide_bushy",),
            strategies=("FP",),
            processors=(12,),
            cardinalities=(400,),
            configs=(FAST,),
            schedulers=("fifo",),
            workload=WorkloadTraffic(
                rate=0.15, duration=30.0, seed=7, fast_path=fast_path
            ),
        )

    def test_workers_and_fast_path_rows_identical(self):
        baseline = run_sweep(self.spec(True), workers=1, cache=False).rows()
        for fast_path in (True, False):
            for workers in (1, 4):
                run = run_sweep(
                    self.spec(fast_path), workers=workers, cache=False
                )
                assert run.rows() == baseline, (
                    f"rows diverged at workers={workers}, "
                    f"fast_path={fast_path}"
                )

    def test_fast_path_shares_the_cache_address(self):
        (on_job,) = self.spec(True).expand()
        (off_job,) = self.spec(False).expand()
        assert on_job.key() == off_job.key()
        assert "fast_path" not in on_job.payload()["workload"]
