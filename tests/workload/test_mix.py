"""Query specs and seeded mixes."""

import random

import pytest

from repro.core import leaf_names
from repro.workload import QueryMix, QuerySpec, sample_specs


class TestQuerySpec:
    def test_defaults_are_the_paper_point(self):
        spec = QuerySpec("wide_bushy")
        assert (spec.cardinality, spec.strategy, spec.relations) == (
            5_000, "FP", 10
        )

    def test_tree_and_catalog(self):
        spec = QuerySpec("left_linear", 300, "SP", 4)
        tree = spec.tree()
        assert len(leaf_names(tree)) == 4
        assert spec.catalog().cardinality_of(leaf_names(tree)[0]) == 300

    def test_label(self):
        assert QuerySpec("right_bushy", 40_000, "RD").label() == (
            "right_bushy/40000/RD"
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shape": "mystery"},
            {"shape": "wide_bushy", "strategy": "XX"},
            {"shape": "wide_bushy", "cardinality": 0},
            {"shape": "wide_bushy", "relations": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QuerySpec(**kwargs)


class TestQueryMix:
    def test_single_always_samples_itself(self):
        spec = QuerySpec("left_bushy", 200, "SE", 4)
        mix = QueryMix.single(spec)
        rng = random.Random(0)
        assert all(mix.sample(rng) is spec for _ in range(20))

    def test_zero_weight_never_drawn(self):
        never = QuerySpec("left_linear", 200, "SP", 4)
        always = QuerySpec("wide_bushy", 200, "FP", 4)
        mix = QueryMix(specs=(never, always), weights=(0.0, 1.0))
        rng = random.Random(1)
        assert all(mix.sample(rng) is always for _ in range(50))

    def test_paper_grid_size(self):
        mix = QueryMix.paper(cardinalities=(5_000, 40_000))
        assert len(mix.specs) == 5 * 2 * 4

    @pytest.mark.parametrize(
        "specs,weights",
        [
            ((), None),
            ((QuerySpec("wide_bushy"),), (1.0, 2.0)),
            ((QuerySpec("wide_bushy"),), (-1.0,)),
            ((QuerySpec("wide_bushy"),), (0.0,)),
        ],
    )
    def test_validation(self, specs, weights):
        with pytest.raises(ValueError):
            QueryMix(specs=specs, weights=weights)


class TestSampleSpecs:
    def test_deterministic(self):
        mix = QueryMix.paper(cardinalities=(200,), relations=4)
        assert sample_specs(mix, 30, seed=5) == sample_specs(mix, 30, seed=5)

    def test_count_and_membership(self):
        mix = QueryMix.paper(cardinalities=(200,), relations=4)
        drawn = sample_specs(mix, 25, seed=2)
        assert len(drawn) == 25
        assert set(drawn) <= set(mix.specs)

    def test_negative_count(self):
        with pytest.raises(ValueError):
            sample_specs(QueryMix.paper(), -1)
