"""The shared-machine engine: golden equivalence with the single-query
simulation, admission gates, determinism, and the closed loop."""

import pytest

from repro.api import run
from repro.workload import (
    AllocationPolicy,
    ExclusivePolicy,
    QueryMix,
    QuerySpec,
    RoundRobinPolicy,
    WorkloadEngine,
)
from repro.workload.engine import REJECTED_RETRY_DELAY

SMALL = QuerySpec("wide_bushy", 200, "SE", 4)


def small_engine(fast_config, **kwargs):
    return WorkloadEngine(8, config=fast_config, **kwargs)


class TestGoldenEquivalence:
    """A one-query workload with an exclusive whole-machine allocation
    IS the paper's single-query regime: the hosted simulation must
    reproduce ``repro.api.run(..., "sim")`` exactly, bit for bit."""

    def test_single_query_reproduces_the_simulation(self):
        single = run("wide_bushy", "FP", 40, "sim")
        engine = WorkloadEngine(40, ExclusivePolicy())
        result = engine.run_open([(0.0, QuerySpec("wide_bushy", 5_000, "FP"))])
        record = result.records[0]
        assert record.service_time == single.response_time
        assert record.result.response_time == single.response_time
        assert record.result.busy_time() == single.busy_time()
        assert record.result.result_tuples == single.result_tuples

    def test_late_arrival_same_service_time(self, fast_config):
        """Start-time translation: a query admitted at t>0 takes exactly
        as long as the same query at t=0."""
        single = run(SMALL.tree(), "SE", 8, "sim",
                     cardinality=200, config=fast_config)
        engine = small_engine(fast_config)
        result = engine.run_open([(123.5, SMALL)])
        assert result.records[0].service_time == pytest.approx(
            single.response_time, abs=1e-9
        )


class TestAdmission:
    def test_exclusive_whole_machine_serializes(self, fast_config):
        engine = small_engine(fast_config)
        result = engine.run_open([(0.0, SMALL), (0.0, SMALL)])
        first, second = result.records
        assert result.peak_in_flight == 1
        assert second.admitted == first.completed
        assert second.queue_delay > 0

    def test_partitions_overlap(self, fast_config):
        engine = small_engine(fast_config, policy=ExclusivePolicy(4))
        result = engine.run_open([(0.0, SMALL), (0.0, SMALL)])
        assert result.peak_in_flight == 2
        assert result.records[1].queue_delay == 0
        assert result.records[0].processors == (0, 1, 2, 3)
        assert result.records[1].processors == (4, 5, 6, 7)

    def test_max_concurrent_bounds_in_flight(self, fast_config):
        engine = small_engine(
            fast_config, policy=RoundRobinPolicy(2), max_concurrent=2
        )
        result = engine.run_open([(0.0, SMALL)] * 6)
        assert result.peak_in_flight == 2
        assert len(result.completed()) == 6

    def test_queue_limit_rejects_the_overflow(self, fast_config):
        engine = small_engine(fast_config, queue_limit=1)
        result = engine.run_open([(0.0, SMALL), (0.0, SMALL), (0.0, SMALL)])
        assert result.rejected_count() == 1
        assert result.records[2].rejected
        assert result.records[2].completed is None
        assert len(result.completed()) == 2

    def test_memory_budget_throttles_concurrency(self, fast_config):
        open_loop = [(0.0, SMALL), (0.0, SMALL)]
        free = small_engine(fast_config, policy=ExclusivePolicy(4))
        gated = small_engine(
            fast_config, policy=ExclusivePolicy(4), memory_budget_bytes=1.0
        )
        assert free.run_open(open_loop).peak_in_flight == 2
        result = gated.run_open(open_loop)
        # The budget is below even one query's demand: each still runs
        # (the gate never starves), but strictly one at a time.
        assert result.peak_in_flight == 1
        assert len(result.completed()) == 2

    def test_infeasible_query_is_rejected_not_fatal(self, fast_config):
        """An FP query on a 1-processor share can never run; it must be
        shed as a rejection, not abort the whole workload mid-simulation
        (regression: the feasibility check used to raise out of the
        event loop)."""
        feasible = QuerySpec("wide_bushy", 200, "SE", 4)
        infeasible = QuerySpec("wide_bushy", 200, "FP", 4)
        engine = small_engine(fast_config, policy=RoundRobinPolicy(1))
        result = engine.run_open([(0.0, feasible), (0.0, infeasible)])
        assert len(result.completed()) == 1
        bad = result.records[1]
        assert bad.rejected
        assert bad.completed is None
        assert "FP" in bad.error

    def test_stuck_queue_is_an_error(self, fast_config):
        class NeverPolicy(AllocationPolicy):
            name = "never"

            def allocate(self, spec, tree, catalog, machine, cost_model):
                return None

        engine = small_engine(fast_config, policy=NeverPolicy())
        with pytest.raises(RuntimeError, match="still queued"):
            engine.run_open([(0.0, SMALL)])

    def test_engines_are_single_use(self, fast_config):
        engine = small_engine(fast_config)
        engine.run_open([(0.0, SMALL)])
        with pytest.raises(RuntimeError, match="fresh"):
            engine.run_open([(0.0, SMALL)])


class TestDeterminism:
    def test_jsonl_byte_identical_across_runs(self, fast_config, tmp_path):
        def run_once(path):
            mix = QueryMix.paper(
                cardinalities=(200,), strategies=("SP", "SE"), relations=4
            )
            from repro.workload import make_arrivals, sample_specs

            times = make_arrivals("poisson", 0.4, 60, seed=1)
            specs = sample_specs(mix, len(times), seed=1)
            engine = small_engine(fast_config, policy=ExclusivePolicy(4))
            engine.run_open(list(zip(times, specs))).write_jsonl(path)
            return path.read_bytes()

        assert run_once(tmp_path / "a.jsonl") == run_once(tmp_path / "b.jsonl")


class TestClosedLoop:
    def test_think_time_separates_a_client_s_queries(self, fast_config):
        mix = QueryMix.single(SMALL)
        engine = small_engine(fast_config)
        result = engine.run_closed(
            mix, 1, think_time=5.0, queries_per_client=3, seed=0
        )
        assert len(result.records) == 3
        for before, after in zip(result.records, result.records[1:]):
            assert after.arrival == pytest.approx(before.completed + 5.0)

    def test_duration_horizon_stops_submission(self, fast_config):
        mix = QueryMix.single(SMALL)
        engine = small_engine(fast_config)
        result = engine.run_closed(mix, 2, duration=10.0, seed=0)
        assert all(r.arrival < 10.0 for r in result.records)
        assert all(r.completed is not None for r in result.records)

    def test_rejection_does_not_stall_the_client(self, fast_config):
        """A closed-loop client whose query is bounced keeps going —
        rejection feeds the think-time continuation too."""
        mix = QueryMix.single(SMALL)
        engine = small_engine(fast_config, queue_limit=0)
        result = engine.run_closed(
            mix, 4, queries_per_client=2, seed=0
        )
        assert len(result.records) == 8
        assert result.rejected_count() > 0

    def test_rejecting_loop_with_zero_think_time_terminates(
        self, fast_config
    ):
        """Regression (livelock): queue_limit + think_time=0 used to
        resubmit a bounced query at the same simulated instant, be
        bounced again, and spin forever without advancing the clock.
        Rejected retries now wait a positive minimum delay, so the
        duration horizon is always reached."""
        mix = QueryMix.single(SMALL)
        engine = small_engine(fast_config, queue_limit=0)
        result = engine.run_closed(mix, 3, duration=10.0, seed=0)
        assert result.rejected_count() > 0
        assert all(r.arrival < 10.0 for r in result.records)
        assert result.makespan >= 10.0 - REJECTED_RETRY_DELAY

    def test_rejected_retry_waits_the_minimum_delay(self, fast_config):
        """A think_time=0 client's retry after a rejection lands
        strictly later in simulated time."""
        mix = QueryMix.single(SMALL)
        engine = small_engine(fast_config, queue_limit=0)
        result = engine.run_closed(mix, 2, queries_per_client=2, seed=0)
        by_client = {}
        for r in result.records:
            by_client.setdefault(r.client, []).append(r)
        for records in by_client.values():
            for before, after in zip(records, records[1:]):
                if before.rejected:
                    assert (
                        after.arrival
                        >= before.arrival + REJECTED_RETRY_DELAY - 1e-12
                    )

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"clients": 0, "queries_per_client": 1}, "client"),
            ({"clients": 1}, "stop"),
            ({"clients": 1, "queries_per_client": 0}, "positive"),
            ({"clients": 1, "queries_per_client": 1, "think_time": -1.0},
             "think_time"),
        ],
    )
    def test_validation(self, fast_config, kwargs, match):
        clients = kwargs.pop("clients")
        with pytest.raises(ValueError, match=match):
            small_engine(fast_config).run_closed(
                QueryMix.single(SMALL), clients, **kwargs
            )


class TestEngineValidation:
    def test_gate_arguments(self, fast_config):
        with pytest.raises(ValueError):
            WorkloadEngine(8, config=fast_config, max_concurrent=0)
        with pytest.raises(ValueError):
            WorkloadEngine(8, config=fast_config, queue_limit=-1)
        with pytest.raises(ValueError):
            WorkloadEngine(0, config=fast_config)
