"""Multi-tenancy: tenant contracts, per-tenant caps and deadlines,
per-tenant metrics, the api's rated arrival streams, and the recovery
seam (crash retries keep their original urgency)."""

import pytest

from repro.api import run_workload
from repro.faults import CrashFault, FaultSchedule
from repro.workload import (
    QuerySpec,
    TenantSpec,
    WorkloadEngine,
    make_tenants,
)

SMALL = QuerySpec("wide_bushy", 200, "SE", 4)


def small_engine(fast_config, **kwargs):
    return WorkloadEngine(8, config=fast_config, **kwargs)


def tenant_spec(name, **kwargs):
    return QuerySpec("wide_bushy", 200, "SE", 4, tenant=name, **kwargs)


class TestTenantSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty name"):
            TenantSpec("")
        with pytest.raises(ValueError, match="weight"):
            TenantSpec("t", weight=0.0)
        with pytest.raises(ValueError, match="deadline"):
            TenantSpec("t", deadline=-1.0)
        with pytest.raises(ValueError, match="queue_limit"):
            TenantSpec("t", queue_limit=-1)
        with pytest.raises(ValueError, match="max_concurrent"):
            TenantSpec("t", max_concurrent=0)
        with pytest.raises(ValueError, match="rate"):
            TenantSpec("t", rate=0.0)

    def test_payload_round_trip(self):
        spec = TenantSpec(
            "gold", weight=2.0, priority=3, deadline=60.0,
            queue_limit=4, max_concurrent=2, rate=0.1,
        )
        assert TenantSpec.from_payload(spec.to_payload()) == spec

    def test_payload_omits_defaults(self):
        assert TenantSpec("plain").to_payload() == {"name": "plain"}

    def test_from_payload_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown tenant keys"):
            TenantSpec.from_payload({"name": "t", "wieght": 2.0})
        with pytest.raises(ValueError, match="needs a 'name'"):
            TenantSpec.from_payload({"weight": 2.0})


class TestMakeTenants:
    def test_none_is_empty(self):
        assert make_tenants(None) == {}

    def test_sequence_of_specs_and_dicts(self):
        tenants = make_tenants(
            [TenantSpec("a"), {"name": "b", "weight": 2.0}]
        )
        assert sorted(tenants) == ["a", "b"]
        assert tenants["b"].weight == 2.0

    def test_json_document_form(self):
        tenants = make_tenants({"tenants": [{"name": "a"}]})
        assert list(tenants) == ["a"]

    def test_ready_mapping_passes_through(self):
        spec = TenantSpec("a")
        assert make_tenants({"a": spec}) == {"a": spec}

    def test_mapping_name_mismatch_rejected(self):
        with pytest.raises(ValueError, match="does not match"):
            make_tenants({"a": TenantSpec("b")})

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate tenant"):
            make_tenants([TenantSpec("a"), TenantSpec("a")])

    def test_bad_entry_type_rejected(self):
        with pytest.raises(TypeError, match="TenantSpec or payload"):
            make_tenants(["a"])


class TestTenantDeadlines:
    def test_tenant_default_applies(self, fast_config):
        engine = small_engine(
            fast_config, tenants=[TenantSpec("t", deadline=60.0)]
        )
        record = engine.submit_at(0.0, tenant_spec("t"))
        assert record.deadline == 60.0

    def test_spec_deadline_wins(self, fast_config):
        engine = small_engine(
            fast_config, tenants=[TenantSpec("t", deadline=60.0)]
        )
        record = engine.submit_at(0.0, tenant_spec("t", deadline=5.0))
        assert record.deadline == 5.0

    def test_engine_default_covers_unknown_tenants(self, fast_config):
        engine = small_engine(
            fast_config, deadline=30.0,
            tenants=[TenantSpec("t", deadline=60.0)],
        )
        assert engine.submit_at(0.0, tenant_spec("other")).deadline == 30.0
        assert engine.submit_at(0.0, SMALL).deadline == 30.0


class TestTenantCaps:
    def test_queue_limit_sheds_the_overflow(self, fast_config):
        engine = small_engine(
            fast_config, tenants=[TenantSpec("t", queue_limit=1)]
        )
        result = engine.run_open([(0.0, tenant_spec("t"))] * 3)
        first, queued, shed = result.records
        assert shed.shed == "tenant_queue_limit"
        assert "queue limit (1)" in shed.error
        assert len(result.completed()) == 2
        assert result.shed_count("t") == 1

    def test_max_concurrent_skipped_by_scheduler(self, fast_config):
        """Half-machine partitions run two queries at once; with tenant
        ``a`` capped at one, the scheduler skips a's second query and
        lets ``b`` through instead."""
        from repro.workload import ExclusivePolicy

        engine = small_engine(
            fast_config,
            policy=ExclusivePolicy(4),
            scheduler="fifo",
            tenants=[TenantSpec("a", max_concurrent=1)],
        )
        result = engine.run_open([
            (0.0, tenant_spec("a")),
            (0.0, tenant_spec("a")),
            (0.0, tenant_spec("b")),
        ])
        a1, a2, b = result.records
        assert b.admitted == 0.0
        assert a2.admitted > a1.admitted
        assert result.peak_in_flight == 2
        assert len(result.completed()) == 3

    def test_max_concurrent_blocks_the_fifo_head(self, fast_config):
        """The legacy queue is strict FIFO: the capped tenant's second
        query holds the head and ``b`` waits behind it."""
        from repro.workload import ExclusivePolicy

        engine = small_engine(
            fast_config,
            policy=ExclusivePolicy(4),
            tenants=[TenantSpec("a", max_concurrent=1)],
        )
        result = engine.run_open([
            (0.0, tenant_spec("a")),
            (0.0, tenant_spec("a")),
            (0.0, tenant_spec("b")),
        ])
        a1, a2, b = result.records
        assert a2.admitted > 0.0
        assert b.admitted >= a2.admitted
        assert len(result.completed()) == 3


class TestTenantMetrics:
    def test_tenant_summary_counts(self, fast_config):
        engine = small_engine(fast_config)
        result = engine.run_open([
            (0.0, tenant_spec("a")),
            (0.0, tenant_spec("b")),
            (0.5, tenant_spec("a")),
        ])
        summary = result.tenant_summary()
        assert sorted(summary) == ["a", "b"]
        assert summary["a"]["submitted"] == 2
        assert summary["a"]["completed"] == 2
        assert summary["b"]["submitted"] == 1
        assert summary["a"]["goodput"] > 0

    def test_latency_stats_none_for_idle_tenant(self, fast_config):
        """A tenant with no completions reports None latency, never a
        fake zero (it would poison solo baselines)."""
        engine = small_engine(
            fast_config, tenants=[TenantSpec("doomed", deadline=0.001)]
        )
        result = engine.run_open([
            (0.0, tenant_spec("lucky")),
            (0.0, tenant_spec("doomed")),
        ])
        assert result.latency_stats("doomed") == {
            "mean": None, "p50": None, "p95": None, "p99": None,
        }
        assert result.latency_stats("lucky")["p50"] is not None
        assert result.latency_stats() == result.latency_stats(None)

    def test_rows_carry_tenant_only_when_set(self, fast_config):
        engine = small_engine(fast_config)
        result = engine.run_open([(0.0, tenant_spec("a")), (0.5, SMALL)])
        tagged, untagged = result.rows()
        assert tagged["tenant"] == "a"
        assert "tenant" not in untagged


class TestApiTenantStreams:
    def test_rated_tenants_generate_streams(self, fast_config):
        result = run_workload(
            "wide_bushy",
            duration=40.0,
            seed=3,
            machine_size=8,
            strategy="SE",
            cardinality=200,
            relations=4,
            config=fast_config,
            scheduler="wfq",
            tenants=[
                TenantSpec("a", rate=0.2),
                TenantSpec("b", rate=0.2, weight=2.0),
            ],
        )
        tenants = {record.tenant for record in result.records}
        assert tenants == {"a", "b"}
        assert result.scheduler == "wfq"
        assert len(result.records) > 0

    def test_rated_streams_are_deterministic(self, fast_config):
        kwargs = dict(
            duration=40.0, seed=3, machine_size=8, strategy="SE",
            cardinality=200, relations=4, config=fast_config,
            scheduler="wfq",
        )
        tenants = (TenantSpec("a", rate=0.2), TenantSpec("b", rate=0.3))
        first = run_workload("wide_bushy", tenants=tenants, **kwargs)
        second = run_workload("wide_bushy", tenants=tenants, **kwargs)
        assert first.rows() == second.rows()

    def test_unrated_tenants_use_the_shared_stream(self, fast_config):
        """Without any rated tenant the classic single arrival stream
        runs, untenanted."""
        result = run_workload(
            "wide_bushy",
            rate=0.2,
            duration=20.0,
            machine_size=8,
            strategy="SE",
            cardinality=200,
            relations=4,
            config=fast_config,
            scheduler="fifo",
            tenants=[TenantSpec("idle", weight=2.0)],
        )
        assert all(record.tenant is None for record in result.records)


class TestRecoverySeam:
    """Satellite regression: a crash retry re-enters through the
    scheduler with its *original* arrival, so EDF ranks it by its real
    urgency instead of treating it as a fresh arrival."""

    ARRIVALS = None  # built per test: timing matters

    def _run(self, fast_config, scheduler):
        faults = FaultSchedule(
            crashes=(CrashFault(processor=0, at=0.3, repair_at=0.35),)
        )
        engine = small_engine(
            fast_config,
            scheduler=scheduler,
            faults=faults,
            recovery="restart",
            retry_backoff=0.5,
        )
        victim = QuerySpec("wide_bushy", 200, "SE", 4, deadline=1_000.0)
        filler = SMALL
        fresh = QuerySpec("wide_bushy", 200, "SE", 4, deadline=2_000.0)
        return engine.run_open([
            (0.0, victim),     # admitted, crashed at 0.3, retries at 0.8
            (0.32, filler),    # occupies the machine through the retry
            (0.4, fresh),      # queued before the retry re-arrives
        ])

    def test_edf_ranks_the_retry_by_original_arrival(self, fast_config):
        result = self._run(fast_config, "edf")
        victim, filler, fresh = result.records
        assert victim.attempts == 2
        assert victim.completed is not None
        # EDF: the retry's absolute deadline (0 + 1000) beats the fresh
        # arrival's (0.4 + 2000) even though the fresh query was
        # enqueued first — the retry runs before the fresh query is
        # even admitted.  (``admitted`` keeps the first-attempt stamp,
        # so completion order is the observable.)
        assert victim.completed <= fresh.admitted
        assert victim.completed < fresh.completed

    def test_fifo_contrast_serves_the_fresh_arrival_first(self, fast_config):
        result = self._run(fast_config, "fifo")
        victim, filler, fresh = result.records
        assert victim.attempts == 2
        assert fresh.completed < victim.completed
