"""Workload metrics: percentiles, result aggregates, knee detection."""

import pytest

from repro.workload import (
    QueryRecord,
    QuerySpec,
    WorkloadResult,
    percentile,
    saturation_knee,
)

SPEC = QuerySpec("wide_bushy", 200, "SE", 4)


class TestPercentile:
    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5

    def test_extremes(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 5.0

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


def record(index, arrival, admitted, completed, rejected=False):
    return QueryRecord(
        index=index, spec=SPEC, arrival=arrival,
        admitted=admitted, completed=completed, rejected=rejected,
    )


class TestQueryRecord:
    def test_latency_decomposition(self):
        r = record(0, 1.0, 3.0, 10.0)
        assert r.latency == 9.0
        assert r.queue_delay == 2.0
        assert r.service_time == 7.0
        assert r.latency == r.queue_delay + r.service_time

    def test_unfinished_is_none(self):
        r = QueryRecord(index=0, spec=SPEC, arrival=1.0)
        assert r.latency is None
        assert r.queue_delay is None
        assert r.service_time is None

    def test_row_is_json_scalars_only(self):
        row = record(3, 1.0, 2.0, 5.0).row()
        assert row["query"] == 3
        assert row["shape"] == "wide_bushy"
        assert row["strategy_requested"] == "SE"
        for value in row.values():
            assert isinstance(value, (int, float, str, bool, list, type(None)))


class TestWorkloadResult:
    def make(self):
        records = [
            record(0, 0.0, 0.0, 4.0),
            record(1, 1.0, 4.0, 10.0),
            record(2, 2.0, None, None, rejected=True),
        ]
        return WorkloadResult(
            records=records, machine_size=4, policy="exclusive",
            makespan=10.0, busy_seconds=20.0, peak_in_flight=1,
        )

    def test_populations(self):
        result = self.make()
        assert len(result.completed()) == 2
        assert result.rejected_count() == 1

    def test_headline_numbers(self):
        result = self.make()
        assert result.throughput() == pytest.approx(0.2)
        assert result.utilization() == pytest.approx(0.5)
        assert result.latency_stats()["mean"] == pytest.approx(6.5)
        assert result.mean_queue_delay() == pytest.approx(1.5)
        assert result.mean_service_time() == pytest.approx(5.0)

    def test_no_completions_has_no_latency(self):
        """A fully rejected load point must not report a fake 0-second
        latency (it would poison saturation-knee baselines)."""
        result = WorkloadResult(
            records=[record(0, 0.0, None, None, rejected=True)],
            machine_size=4, policy="exclusive",
            makespan=0.0, busy_seconds=0.0, peak_in_flight=0,
        )
        assert result.latency_stats() == {
            "mean": None, "p50": None, "p95": None, "p99": None
        }
        assert result.throughput() == 0.0
        assert result.utilization() == 0.0
        assert "latency n/a" in result.summary()

    def test_summary_mentions_the_headlines(self):
        text = self.make().summary()
        assert "exclusive@4p" in text
        assert "2/3 completed" in text
        assert "1 rejected" in text


class TestSaturationKnee:
    def test_flat_curve_has_no_knee(self):
        assert saturation_knee([1, 2, 4], [1.0, 1.1, 1.2]) is None

    def test_first_load_past_the_factor(self):
        assert saturation_knee([1, 2, 4, 8], [1.0, 1.5, 2.5, 9.0]) == 4

    def test_order_independent(self):
        assert saturation_knee([8, 1, 4, 2], [9.0, 1.0, 2.5, 1.5]) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            saturation_knee([1], [1.0, 2.0])
        with pytest.raises(ValueError):
            saturation_knee([1], [1.0], factor=1.0)
        assert saturation_knee([], []) is None

    def test_skips_points_without_latency(self):
        """A fully rejected point (None latency) cannot anchor the
        baseline or be a knee candidate."""
        assert saturation_knee([1, 2, 4], [None, 1.0, 1.5]) is None
        assert saturation_knee([1, 2, 4, 8], [None, 1.0, 1.5, 2.5]) == 8
        assert saturation_knee([1, 2], [None, None]) is None

    def test_zero_baseline_does_not_fake_a_knee(self):
        """A 0-latency lightest point must not make every later point
        look saturated (regression: zero baseline × factor == 0)."""
        assert saturation_knee([1, 2, 4], [0.0, 1.0, 1.5]) is None
        assert saturation_knee([1, 2, 4, 8], [0.0, 1.0, 1.5, 2.5]) == 8
