"""Pluggable schedulers: policy ordering, the visibility pool,
costed decisions, and byte-identity of ``fifo`` with the legacy queue."""

import pytest

from repro.workload import (
    EdfScheduler,
    ExclusivePolicy,
    FifoScheduler,
    PriorityScheduler,
    QuerySpec,
    SjfScheduler,
    WfqScheduler,
    WorkloadEngine,
    make_scheduler,
)
from repro.workload.metrics import QueryRecord

SMALL = QuerySpec("wide_bushy", 200, "SE", 4)
BIG = QuerySpec("wide_bushy", 2_000, "SE", 4)


def small_engine(fast_config, **kwargs):
    return WorkloadEngine(8, config=fast_config, **kwargs)


def record(index, *, arrival=0.0, deadline=None, spec=SMALL, tenant=None):
    return QueryRecord(
        index=index, spec=spec, arrival=arrival, deadline=deadline,
        tenant=tenant,
    )


class TestSchedulerUnits:
    def test_make_scheduler_names(self):
        assert make_scheduler(None) is None
        assert isinstance(make_scheduler("fifo"), FifoScheduler)
        assert isinstance(make_scheduler("edf"), EdfScheduler)
        assert isinstance(make_scheduler("sjf"), SjfScheduler)
        assert isinstance(make_scheduler("priority"), PriorityScheduler)
        assert isinstance(make_scheduler("wfq"), WfqScheduler)
        ready = EdfScheduler()
        assert make_scheduler(ready) is ready

    def test_make_scheduler_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("lifo")

    def test_empty_pool_picks_none(self):
        scheduler = EdfScheduler()
        scheduler.attach(None)
        assert scheduler.pick(None, 0.0) is None

    def test_fifo_keeps_enqueue_order(self):
        scheduler = FifoScheduler()
        scheduler.attach(None)
        first, second = record(0), record(1)
        scheduler.enqueue(first)
        scheduler.enqueue(second)
        assert scheduler.pick(None, 0.0) is first

    def test_edf_prefers_earliest_absolute_deadline(self):
        scheduler = EdfScheduler()
        scheduler.attach(None)
        late = record(0, arrival=0.0, deadline=100.0)
        urgent = record(1, arrival=5.0, deadline=20.0)
        free = record(2)  # deadline-free ranks last
        for entry in (free, late, urgent):
            scheduler.enqueue(entry)
        assert scheduler.pick(None, 0.0) is urgent

    def test_edf_ties_resolve_to_enqueue_order(self):
        scheduler = EdfScheduler()
        scheduler.attach(None)
        first = record(0, deadline=50.0)
        second = record(1, deadline=50.0)
        scheduler.enqueue(first)
        scheduler.enqueue(second)
        assert scheduler.pick(None, 0.0) is first

    def test_remove_is_by_identity(self):
        scheduler = FifoScheduler()
        scheduler.attach(None)
        twin_a = record(0)
        twin_b = record(0)  # equal by value, distinct by identity
        scheduler.enqueue(twin_a)
        scheduler.enqueue(twin_b)
        assert scheduler.remove(twin_b)
        assert scheduler.pick(None, 0.0) is twin_a
        assert not scheduler.remove(twin_b)

    def test_pool_size_bounds_visibility(self):
        scheduler = EdfScheduler()
        scheduler.attach(None, pool_size=2)
        hidden_urgent = record(2, deadline=1.0)
        visible = [record(0, deadline=90.0), record(1, deadline=80.0)]
        for entry in visible + [hidden_urgent]:
            scheduler.enqueue(entry)
        assert scheduler.pick(None, 0.0) is visible[1]

    def test_attach_rejects_bad_pool_size(self):
        with pytest.raises(ValueError, match="pool_size"):
            EdfScheduler().attach(None, pool_size=0)


class TestEngineValidation:
    def test_pool_size_needs_a_scheduler(self, fast_config):
        with pytest.raises(ValueError, match="pool_size needs a scheduler"):
            small_engine(fast_config, pool_size=4)

    def test_scheduling_cost_needs_a_scheduler(self, fast_config):
        with pytest.raises(
            ValueError, match="scheduling_cost needs a scheduler"
        ):
            small_engine(fast_config, scheduling_cost=0.1)

    def test_negative_scheduling_cost_rejected(self, fast_config):
        with pytest.raises(ValueError, match="non-negative"):
            small_engine(
                fast_config, scheduler="fifo", scheduling_cost=-1.0
            )


class TestFifoIdentity:
    """``scheduler="fifo"`` is the legacy queue with a name: same rows,
    same floats, same order."""

    ARRIVALS = [(0.0, SMALL), (0.0, BIG), (0.1, SMALL), (2.0, SMALL)]

    def test_rows_identical_to_legacy(self, fast_config):
        legacy = small_engine(fast_config).run_open(self.ARRIVALS)
        named = small_engine(fast_config, scheduler="fifo").run_open(
            self.ARRIVALS
        )
        legacy_rows = legacy.rows()
        named_rows = named.rows()
        assert legacy_rows == named_rows
        assert legacy.makespan == named.makespan
        assert named.scheduler == "fifo"
        assert legacy.scheduler is None

    def test_rows_identical_under_deadlines(self, fast_config):
        legacy = small_engine(fast_config, deadline=1.5).run_open(
            self.ARRIVALS
        )
        named = small_engine(
            fast_config, deadline=1.5, scheduler="fifo"
        ).run_open(self.ARRIVALS)
        assert legacy.rows() == named.rows()


class TestPolicyOrdering:
    """End-to-end ordering on a serialized (whole-machine) engine: the
    first query admits immediately, the rest queue, and the scheduler
    decides who goes next."""

    def test_edf_admits_most_urgent_first(self, fast_config):
        engine = small_engine(fast_config, scheduler="edf")
        relaxed = QuerySpec("wide_bushy", 200, "SE", 4, deadline=500.0)
        urgent = QuerySpec("wide_bushy", 200, "SE", 4, deadline=300.0)
        result = engine.run_open(
            [(0.0, SMALL), (0.0, relaxed), (0.0, urgent)]
        )
        running, second, third = result.records
        assert third.admitted < second.admitted
        assert len(result.completed()) == 3

    def test_sjf_admits_shortest_first(self, fast_config):
        engine = small_engine(fast_config, scheduler="sjf")
        result = engine.run_open([(0.0, BIG), (0.0, BIG), (0.0, SMALL)])
        _, queued_big, queued_small = result.records
        assert queued_small.admitted < queued_big.admitted
        assert len(result.completed()) == 3

    def test_pool_size_hides_the_better_candidate(self, fast_config):
        relaxed = QuerySpec("wide_bushy", 200, "SE", 4, deadline=500.0)
        urgent = QuerySpec("wide_bushy", 200, "SE", 4, deadline=300.0)
        arrivals = [(0.0, SMALL), (0.0, relaxed), (0.0, urgent)]
        blinkered = small_engine(
            fast_config, scheduler="edf", pool_size=1
        ).run_open(arrivals)
        _, second, third = blinkered.records
        # With only the queue head visible, EDF degenerates to FIFO and
        # the urgent query waits its turn.
        assert second.admitted < third.admitted

    def test_wfq_is_deterministic(self, fast_config):
        arrivals = [
            (0.0, SMALL), (0.0, BIG), (0.2, SMALL), (0.2, BIG),
            (1.0, SMALL),
        ]
        first = small_engine(fast_config, scheduler="wfq").run_open(arrivals)
        second = small_engine(fast_config, scheduler="wfq").run_open(arrivals)
        assert first.rows() == second.rows()
        assert first.makespan == second.makespan


class TestCostedDecisions:
    COST = 0.05

    def test_makespan_grows_by_decisions_times_cost(self, fast_config):
        """Serialized machine: every admission is preceded by exactly
        one costed decision, so the makespan grows by exactly
        ``decisions x cost``."""
        arrivals = [(0.0, SMALL)] * 3
        base = small_engine(fast_config, scheduler="fifo").run_open(arrivals)
        costed = small_engine(
            fast_config, scheduler="fifo", scheduling_cost=self.COST
        ).run_open(arrivals)
        assert costed.scheduling_decisions == 3
        assert costed.makespan == pytest.approx(
            base.makespan + 3 * self.COST
        )
        assert len(costed.completed()) == 3

    def test_zero_cost_counts_decisions_synchronously(self, fast_config):
        result = small_engine(fast_config, scheduler="fifo").run_open(
            [(0.0, SMALL)] * 3
        )
        assert result.scheduling_decisions == 3

    def test_legacy_path_never_counts(self, fast_config):
        result = small_engine(fast_config).run_open([(0.0, SMALL)] * 3)
        assert result.scheduling_decisions == 0
        assert result.scheduler is None


class TestExpiredPicks:
    def test_all_queued_expired_sheds_everything(self, fast_config):
        """White-box: every queued query's deadline has already passed
        when the pump runs — each pick sheds one as ``expired`` and the
        queue drains without an admission."""
        engine = small_engine(fast_config, scheduler="edf")
        stale = [
            record(index, arrival=0.0, deadline=5.0) for index in range(3)
        ]
        for entry in stale:
            engine.records.append(entry)
            engine._enqueue(entry)
        engine.machine.clock.now = 10.0
        engine._pump()
        assert not engine._queue
        assert len(engine.scheduler) == 0
        assert all(entry.shed == "expired" for entry in stale)
        assert all(entry.deadline_missed for entry in stale)
        assert engine.scheduling_decisions == 3
        assert engine.peak_in_flight == 0
