"""Arrival processes: determinism, ranges, dispatch."""

import pytest

from repro.workload import (
    ARRIVAL_KINDS,
    fixed_arrivals,
    make_arrivals,
    poisson_arrivals,
)


class TestPoisson:
    def test_deterministic(self):
        assert poisson_arrivals(0.5, 100, seed=7) == poisson_arrivals(
            0.5, 100, seed=7
        )

    def test_seed_matters(self):
        assert poisson_arrivals(0.5, 100, seed=1) != poisson_arrivals(
            0.5, 100, seed=2
        )

    def test_within_window(self):
        times = poisson_arrivals(1.0, 50, seed=3)
        assert all(0.0 <= t < 50.0 for t in times)
        assert times == sorted(times)

    def test_start_offset_shifts(self):
        base = poisson_arrivals(1.0, 20, seed=3)
        shifted = poisson_arrivals(1.0, 20, seed=3, start=100.0)
        assert shifted == pytest.approx([t + 100.0 for t in base])

    def test_rate_scales_count(self):
        slow = len(poisson_arrivals(0.5, 400, seed=9))
        fast = len(poisson_arrivals(2.0, 400, seed=9))
        assert fast > 2 * slow


class TestFixed:
    def test_evenly_spaced(self):
        times = fixed_arrivals(2.0, 10)
        assert times == pytest.approx([i * 0.5 for i in range(20)])

    def test_start_offset(self):
        assert fixed_arrivals(1.0, 3, start=5.0) == pytest.approx(
            [5.0, 6.0, 7.0]
        )

    def test_zero_duration_is_empty(self):
        assert fixed_arrivals(1.0, 0) == []


class TestDispatch:
    def test_kinds(self):
        assert ARRIVAL_KINDS == ("poisson", "fixed")

    def test_make_arrivals_matches_direct(self):
        assert make_arrivals("poisson", 1.0, 30, seed=4) == poisson_arrivals(
            1.0, 30, seed=4
        )
        assert make_arrivals("fixed", 1.0, 3) == fixed_arrivals(1.0, 3)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown arrival kind"):
            make_arrivals("bursty", 1.0, 10)

    @pytest.mark.parametrize("rate,duration", [(0.0, 10), (-1.0, 10), (1.0, -1)])
    def test_validation(self, rate, duration):
        with pytest.raises(ValueError):
            poisson_arrivals(rate, duration)
