"""Latency-versus-load curves and the saturation knee.

The closed-loop acceptance property lives here: past the knee, p95
latency never goes back down — queueing only ever gets worse.
"""

import pytest

from repro.workload import (
    ExclusivePolicy,
    LoadPoint,
    QueryMix,
    QuerySpec,
    WorkloadEngine,
    closed_loop_curve,
    curve_knee,
    open_loop_curve,
)

MIX = QueryMix.single(QuerySpec("wide_bushy", 200, "SE", 4))


@pytest.fixture(scope="module")
def closed_points(fast_config):
    return closed_loop_curve(
        [1, 2, 4, 8, 16],
        MIX,
        lambda: WorkloadEngine(8, ExclusivePolicy(), config=fast_config),
        queries_per_client=3,
        seed=0,
    )


class TestClosedLoopCurve:
    def test_one_point_per_population(self, closed_points):
        assert [p.load for p in closed_points] == [1, 2, 4, 8, 16]
        assert all(p.completed == p.load * 3 for p in closed_points)

    def test_machine_saturates(self, closed_points):
        """Whole-machine exclusive allocation serializes everything, so
        piling on clients must find the knee."""
        assert curve_knee(closed_points) is not None

    def test_p95_monotone_past_the_knee(self, closed_points):
        """Past saturation the latency curve only climbs: p95 is
        non-decreasing from the knee onward."""
        knee = curve_knee(closed_points)
        tail = [p.latency_p95 for p in closed_points if p.load >= knee]
        assert len(tail) >= 2
        for before, after in zip(tail, tail[1:]):
            assert after >= before

    def test_utilization_bounded(self, closed_points):
        assert all(0.0 < p.utilization <= 1.0 for p in closed_points)


class TestOpenLoopCurve:
    def test_throughput_tracks_offered_load_until_saturation(
        self, fast_config
    ):
        points = open_loop_curve(
            [0.02, 0.05],
            MIX,
            lambda: WorkloadEngine(8, ExclusivePolicy(4), config=fast_config),
            duration=200,
            seed=3,
        )
        assert len(points) == 2
        assert points[1].throughput > points[0].throughput
        for point in points:
            assert point.rejected == 0
            assert point.throughput == pytest.approx(
                point.completed / point.makespan
            )


class TestLoadPoint:
    def test_row_round_trips_the_fields(self, closed_points):
        row = closed_points[0].row()
        assert row["load"] == closed_points[0].load
        assert set(row) == {
            "load", "throughput", "utilization", "latency_mean",
            "latency_p50", "latency_p95", "latency_p99",
            "queue_delay_mean", "completed", "rejected", "makespan",
        }

    def test_of_copies_the_stats(self, fast_config):
        engine = WorkloadEngine(8, config=fast_config)
        result = engine.run_open([(0.0, MIX.specs[0])])
        point = LoadPoint.of(1.0, result)
        assert point.latency_mean == result.latency_stats()["mean"]
        assert point.completed == 1
