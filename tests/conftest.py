"""Shared fixtures: small Wisconsin databases and fast machine configs."""

from __future__ import annotations

import pytest

from repro.core import Catalog, paper_relation_names
from repro.relational import make_query_relations
from repro.sim import MachineConfig


@pytest.fixture(scope="session")
def names6():
    return paper_relation_names(6)


@pytest.fixture(scope="session")
def names10():
    return paper_relation_names(10)


@pytest.fixture(scope="session")
def relations6(names6):
    """Six decorrelated 200-tuple Wisconsin relations."""
    return dict(zip(names6, make_query_relations(6, 200, seed=42)))


@pytest.fixture(scope="session")
def catalog6(names6):
    return Catalog.regular(names6, 200)


@pytest.fixture(scope="session")
def catalog10(names10):
    return Catalog.regular(names10, 2000)


@pytest.fixture(scope="session")
def fast_config():
    """Machine config with coarse batches for quick simulations."""
    return MachineConfig(
        tuple_unit=0.001,
        process_startup=0.008,
        handshake=0.012,
        network_latency=0.05,
        batches=8,
    )
