"""One-phase (joint) optimization and the two-phase gap."""

import pytest

from repro.core import num_joins
from repro.optimizer import QueryGraph
from repro.optimizer.onephase import one_phase_optimize, two_phase_gap
from repro.sim import MachineConfig

FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.005, handshake=0.005,
    network_latency=0.02, batches=4,
)


@pytest.fixture(scope="module")
def small_graph():
    return QueryGraph.chain(["A", "B", "C", "D"], [800, 100, 1200, 300],
                            [0.01, 0.005, 0.004])


class TestOnePhase:
    def test_finds_an_executable_optimum(self, small_graph):
        plan = one_phase_optimize(small_graph, 8, FAST)
        assert plan.response_time > 0
        assert num_joins(plan.tree) == 3
        assert plan.strategy in ("SP", "SE", "RD", "FP")
        assert plan.candidates_tried > 10

    def test_optimum_not_worse_than_any_two_phase_choice(self, small_graph):
        from repro.optimizer import two_phase_optimize

        joint = one_phase_optimize(small_graph, 8, FAST)
        staged = two_phase_optimize(small_graph, 8, config=FAST)
        assert joint.response_time <= min(staged.candidates.values()) + 1e-9

    def test_spread_ordering(self, small_graph):
        plan = one_phase_optimize(small_graph, 8, FAST)
        low, median, high = plan.spread
        assert low <= median <= high
        assert low == pytest.approx(plan.response_time)

    def test_operand_orders_are_distinct_candidates(self, small_graph):
        """Both operand orders of every split are searched: the count
        is even and exceeds the structural tree count."""
        plan = one_phase_optimize(small_graph, 8, FAST)
        assert plan.candidates_tried % 2 == 0

    def test_refuses_large_queries(self):
        graph = QueryGraph.regular([f"R{i}" for i in range(10)], 100)
        with pytest.raises(ValueError, match="not feasible"):
            one_phase_optimize(graph, 20, FAST)

    def test_strategy_subset(self, small_graph):
        plan = one_phase_optimize(small_graph, 8, FAST, strategies=["SP"])
        assert plan.strategy == "SP"


class TestTwoPhaseGap:
    def test_gap_fields(self, small_graph):
        stats = two_phase_gap(small_graph, 8, FAST)
        assert set(stats) == {
            "one_phase", "two_phase", "gap", "median_candidate",
            "worst_candidate", "candidates",
        }
        assert stats["gap"] >= -1e-9
        assert stats["worst_candidate"] >= stats["one_phase"]

    def test_gap_small_on_chain(self, small_graph):
        """The paper's defence of two-phase: not a very bad plan."""
        stats = two_phase_gap(small_graph, 8, FAST)
        assert stats["gap"] < 0.5
