"""The Section 5 strategy-selection guidelines."""

import pytest

from repro.core import Catalog, make_shape, mirror, paper_relation_names
from repro.core.trees import structurally_equal
from repro.optimizer import (
    advise_strategy,
    apply_advice,
    sp_processor_threshold,
    wide_bushiness,
)

NAMES = paper_relation_names(10)
SMALL = Catalog.regular(NAMES, 5000)
LARGE = Catalog.regular(NAMES, 40000)


class TestRules:
    def test_no_memory_means_sp(self):
        """Section 4.4: a system whose memory cannot host one join must
        use SP regardless of everything else."""
        advice = advise_strategy(
            make_shape("right_bushy", NAMES), LARGE, 80,
            memory_holds_one_join=False,
        )
        assert advice.strategy == "SP"
        assert "disk" in advice.rationale or "memory" in advice.rationale

    def test_small_machine_means_sp(self):
        advice = advise_strategy(make_shape("left_linear", NAMES), LARGE, 20)
        assert advice.strategy == "SP"

    def test_wide_bushy_means_se(self):
        advice = advise_strategy(make_shape("wide_bushy", NAMES), LARGE, 80)
        assert advice.strategy == "SE"

    def test_right_oriented_means_rd(self):
        advice = advise_strategy(make_shape("right_bushy", NAMES), LARGE, 80)
        assert advice.strategy == "RD"
        assert not advice.mirrored

    def test_left_oriented_bushy_mirrored_to_rd(self):
        """Section 5: mirror (parts of) the query for free so RD works."""
        advice = advise_strategy(make_shape("left_bushy", NAMES), LARGE, 80)
        assert advice.strategy == "RD"
        assert advice.mirrored

    def test_mirroring_can_be_disabled(self):
        advice = advise_strategy(
            make_shape("left_bushy", NAMES), LARGE, 80, allow_mirroring=False
        )
        assert advice.strategy == "FP"

    def test_linear_tree_large_machine_means_fp(self):
        advice = advise_strategy(make_shape("left_linear", NAMES), LARGE, 80)
        assert advice.strategy == "FP"

    def test_apply_advice_mirrors(self):
        tree = make_shape("left_bushy", NAMES)
        advice = advise_strategy(tree, LARGE, 80)
        applied = apply_advice(tree, advice)
        assert structurally_equal(applied, mirror(tree))

    def test_apply_advice_identity_when_not_mirrored(self):
        tree = make_shape("wide_bushy", NAMES)
        advice = advise_strategy(tree, LARGE, 80)
        assert apply_advice(tree, advice) is tree

    def test_str_mentions_strategy(self):
        advice = advise_strategy(make_shape("wide_bushy", NAMES), LARGE, 80)
        assert "SE" in str(advice)


class TestThreshold:
    def test_scales_with_sqrt_of_problem_size(self):
        """Section 2.3.1: optimal parallelism ∝ √(operand size), so the
        SP region grows with √8 ≈ 2.8 from 5K to 40K."""
        tree = make_shape("wide_bushy", NAMES)
        small = sp_processor_threshold(tree, SMALL)
        large = sp_processor_threshold(tree, LARGE)
        assert large / small == pytest.approx(8 ** 0.5, rel=1e-6)

    def test_40k_at_30_processors_is_sp_territory(self):
        """Our Figure 9-13 sweeps: SP is best or tied at 30 processors
        for the 40K query."""
        tree = make_shape("left_linear", NAMES)
        assert advise_strategy(tree, LARGE, 30).strategy == "SP"

    def test_5k_at_80_processors_is_not_sp_territory(self):
        tree = make_shape("left_linear", NAMES)
        assert advise_strategy(tree, SMALL, 80).strategy != "SP"


class TestWideBushiness:
    def test_values(self):
        assert wide_bushiness(make_shape("left_linear", NAMES)) == 0.0
        assert wide_bushiness(make_shape("wide_bushy", NAMES)) >= 0.3
        assert 0 < wide_bushiness(make_shape("left_bushy", NAMES)) < 0.3
