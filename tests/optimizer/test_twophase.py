"""Two-phase optimization end to end."""

import pytest

from repro.core import is_bushy, num_joins, paper_relation_names
from repro.optimizer import QueryGraph, two_phase_optimize
from repro.sim import MachineConfig

FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)


@pytest.fixture(scope="module")
def regular_graph():
    return QueryGraph.regular(paper_relation_names(10), 2000)


class TestSimulateMode:
    def test_picks_minimum_response(self, regular_graph):
        plan = two_phase_optimize(regular_graph, 40, config=FAST)
        assert plan.candidates is not None
        assert plan.candidates[plan.strategy] == min(plan.candidates.values())
        assert plan.simulation is not None
        assert plan.simulation.response_time == plan.candidates[plan.strategy]

    def test_all_four_strategies_tried(self, regular_graph):
        plan = two_phase_optimize(regular_graph, 40, config=FAST)
        assert set(plan.candidates) == {"SP", "SE", "RD", "FP"}

    def test_strategy_subset(self, regular_graph):
        plan = two_phase_optimize(
            regular_graph, 40, config=FAST, strategies=["SP", "FP"]
        )
        assert set(plan.candidates) == {"SP", "FP"}

    def test_schedule_matches_tree(self, regular_graph):
        plan = two_phase_optimize(regular_graph, 40, config=FAST)
        assert num_joins(plan.tree) == 9
        assert len(plan.schedule.tasks) == 9

    def test_summary_text(self, regular_graph):
        plan = two_phase_optimize(regular_graph, 40, config=FAST)
        text = plan.summary()
        assert "phase 1" in text and "phase 2" in text
        assert "candidates" in text


class TestGuidelinesMode:
    def test_uses_advice(self, regular_graph):
        plan = two_phase_optimize(regular_graph, 80, mode="guidelines")
        assert plan.advice is not None
        assert plan.strategy == plan.advice.strategy
        assert plan.candidates is None

    def test_phase_one_prefers_bushy(self, regular_graph):
        plan = two_phase_optimize(regular_graph, 80, mode="guidelines")
        assert is_bushy(plan.tree)

    def test_small_machine_advises_sp(self, regular_graph):
        plan = two_phase_optimize(regular_graph, 8, mode="guidelines")
        assert plan.strategy == "SP"

    def test_unknown_mode_rejected(self, regular_graph):
        with pytest.raises(ValueError, match="mode"):
            two_phase_optimize(regular_graph, 40, mode="magic")


class TestIrregularQuery:
    def test_chain_query(self):
        g = QueryGraph.chain(
            ["A", "B", "C", "D", "E"],
            [1000, 100, 5000, 300, 2000],
            [0.01, 0.002, 0.001, 0.005],
        )
        plan = two_phase_optimize(g, 12, config=FAST)
        assert plan.total_cost == pytest.approx(85600.0)
        assert plan.simulation.response_time > 0

    def test_guidelines_and_simulate_agree_on_obvious_cases(self):
        g = QueryGraph.regular(paper_relation_names(10), 40000)
        guided = two_phase_optimize(g, 30, mode="guidelines")
        simulated = two_phase_optimize(g, 30, config=FAST)
        # At 30 processors on the 40K problem both modes pick SP (or a
        # strategy within noise of it).
        assert guided.strategy == "SP"
        sp_time = simulated.candidates["SP"]
        assert sp_time <= min(simulated.candidates.values()) * 1.1
