"""Query graphs and cardinality estimation."""

import pytest

from repro.optimizer import QueryGraph


class TestConstructors:
    def test_chain(self):
        g = QueryGraph.chain(["A", "B", "C"], 100, 0.01)
        assert g.relations == ("A", "B", "C")
        assert g.joinable(frozenset("A"), frozenset("B"))
        assert not g.joinable(frozenset("A"), frozenset("C"))

    def test_chain_per_item_values(self):
        g = QueryGraph.chain(["A", "B"], [10, 20], [0.5])
        assert g.cardinalities["B"] == 20

    def test_star(self):
        g = QueryGraph.star("F", ["D1", "D2"], 100, 0.01)
        assert g.joinable(frozenset(["F"]), frozenset(["D1"]))
        assert not g.joinable(frozenset(["D1"]), frozenset(["D2"]))

    def test_clique(self):
        g = QueryGraph.clique(["A", "B", "C"], 10, 0.1)
        assert len(g.selectivities) == 3

    def test_regular(self):
        g = QueryGraph.regular(["A", "B", "C"], 1000)
        assert g.subset_cardinality(frozenset(["A", "B"])) == pytest.approx(1000)
        assert g.subset_cardinality(frozenset(["A", "B", "C"])) == pytest.approx(1000)

    def test_bad_edge_reference(self):
        with pytest.raises(ValueError, match="unknown relation"):
            QueryGraph({"A": 1}, {frozenset(("A", "Z")): 0.5})

    def test_negative_selectivity(self):
        with pytest.raises(ValueError):
            QueryGraph({"A": 1, "B": 1}, {frozenset(("A", "B")): -0.5})

    def test_cardinality_count_mismatch(self):
        with pytest.raises(ValueError):
            QueryGraph.chain(["A", "B"], [1, 2, 3], 0.1)


class TestConnectivity:
    def test_connected_subsets(self):
        g = QueryGraph.chain(["A", "B", "C", "D"], 10, 0.1)
        assert g.connected(frozenset(["A", "B", "C"]))
        assert g.connected(frozenset(["B"]))
        assert not g.connected(frozenset(["A", "C"]))
        assert not g.connected(frozenset())

    def test_edges_between(self):
        g = QueryGraph.chain(["A", "B", "C"], 10, 0.1)
        edges = g.edges_between(frozenset(["A", "B"]), frozenset(["C"]))
        assert edges == [frozenset(("B", "C"))]


class TestCardinality:
    def test_independence_estimate(self):
        g = QueryGraph.chain(["A", "B", "C"], [100, 200, 300], [0.01, 0.001])
        assert g.subset_cardinality(frozenset(["A", "B"])) == pytest.approx(200)
        assert g.subset_cardinality(
            frozenset(["A", "B", "C"])
        ) == pytest.approx(100 * 200 * 300 * 0.01 * 0.001)

    def test_join_cardinality(self):
        g = QueryGraph.chain(["A", "B"], [100, 50], [0.1])
        assert g.join_cardinality(
            frozenset(["A"]), frozenset(["B"])
        ) == pytest.approx(500)
