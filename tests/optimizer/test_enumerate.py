"""Phase-one enumeration: DP optimality and the regular-query property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import is_bushy, num_joins, paper_relation_names
from repro.optimizer import (
    QueryGraph,
    all_trees,
    catalog_for,
    optimal_bushy_tree,
    optimal_left_deep_tree,
    optimal_right_deep_tree,
    tree_total_cost,
)
from repro.core.trees import is_left_linear, is_right_linear, leaf_names


class TestRegularQuery:
    def test_every_tree_costs_44n(self):
        """Section 4.1: all trees of the regular query cost the same."""
        g = QueryGraph.regular(["A", "B", "C", "D", "E"], 100)
        costs = {round(tree_total_cost(g, t), 6) for t in all_trees(g)}
        assert costs == {(5 + 2 * 3 + 2 * 4) * 100}

    def test_dp_matches_and_prefers_bushy(self):
        g = QueryGraph.regular(paper_relation_names(10), 5000)
        entry = optimal_bushy_tree(g)
        assert entry.total_cost == 44 * 5000
        assert is_bushy(entry.tree)
        assert entry.height <= 5  # tie-break toward wide trees

    def test_all_relations_used(self):
        g = QueryGraph.regular(paper_relation_names(7), 100)
        entry = optimal_bushy_tree(g)
        assert sorted(leaf_names(entry.tree)) == sorted(g.relations)


class TestDPOptimality:
    def cases(self):
        yield QueryGraph.chain(
            ["A", "B", "C", "D", "E"],
            [1000, 100, 5000, 300, 2000],
            [0.01, 0.002, 0.001, 0.005],
        )
        yield QueryGraph.star("F", ["D1", "D2", "D3"], [10000, 50, 80, 20], 0.01)
        yield QueryGraph.clique(["A", "B", "C", "D"], [100, 400, 50, 900], 0.01)

    def test_dp_equals_brute_force(self):
        for g in self.cases():
            best = min(tree_total_cost(g, t) for t in all_trees(g))
            entry = optimal_bushy_tree(g)
            assert entry.total_cost == pytest.approx(best)
            assert tree_total_cost(g, entry.tree) == pytest.approx(best)

    @given(
        st.lists(st.integers(10, 5000), min_size=3, max_size=6),
        st.integers(0, 10**6),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_dp_never_beaten_by_enumeration(self, cards, seed):
        import random

        rng = random.Random(seed)
        names = [f"R{i}" for i in range(len(cards))]
        sels = [10 ** -rng.uniform(1, 4) for _ in range(len(cards) - 1)]
        g = QueryGraph.chain(names, cards, sels)
        entry = optimal_bushy_tree(g)
        best = min(tree_total_cost(g, t) for t in all_trees(g))
        assert entry.total_cost <= best * (1 + 1e-9)

    def test_disconnected_graph_rejected(self):
        g = QueryGraph({"A": 10, "B": 10}, {})
        with pytest.raises(ValueError, match="disconnected"):
            optimal_bushy_tree(g)

    def test_single_relation_rejected(self):
        with pytest.raises(ValueError):
            optimal_bushy_tree(QueryGraph({"A": 10}, {}))


class TestLinearDP:
    def test_left_deep_structure(self):
        g = QueryGraph.chain(["A", "B", "C", "D"], 100, 0.01)
        entry = optimal_left_deep_tree(g)
        assert is_left_linear(entry.tree)
        assert num_joins(entry.tree) == 3

    def test_right_deep_is_mirror(self):
        g = QueryGraph.chain(["A", "B", "C", "D"], 100, 0.01)
        left = optimal_left_deep_tree(g)
        right = optimal_right_deep_tree(g)
        assert is_right_linear(right.tree)
        assert right.total_cost == left.total_cost

    def test_linear_never_cheaper_than_bushy(self):
        """The bushy space contains every linear tree."""
        for g in (
            QueryGraph.chain(["A", "B", "C", "D", "E"],
                             [1000, 100, 5000, 300, 2000],
                             [0.01, 0.002, 0.001, 0.005]),
            QueryGraph.star("F", ["D1", "D2"], [1000, 50, 80], 0.01),
        ):
            assert (
                optimal_bushy_tree(g).total_cost
                <= optimal_left_deep_tree(g).total_cost + 1e-9
            )

    def test_linear_dp_equals_brute_force_over_linear_trees(self):
        from repro.core.trees import is_left_linear as ill

        g = QueryGraph.chain(
            ["A", "B", "C", "D"], [500, 40, 900, 60], [0.02, 0.005, 0.01]
        )
        linear_costs = [
            tree_total_cost(g, t) for t in all_trees(g) if ill(t)
        ]
        assert optimal_left_deep_tree(g).total_cost == pytest.approx(
            min(linear_costs)
        )


class TestCatalogBridge:
    def test_catalog_for_exposes_subset_estimates(self):
        g = QueryGraph.chain(["A", "B"], [100, 200], [0.001])
        catalog = catalog_for(g)
        assert catalog.cardinality_of("A") == 100
        assert catalog.subset_estimator(frozenset(["A", "B"])) == pytest.approx(20)
