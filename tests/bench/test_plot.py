"""ASCII chart rendering."""

import pytest

from repro.bench import Experiment, run_sweep
from repro.bench.plot import MARKERS, ascii_plot, _line


@pytest.fixture(scope="module")
def sweep(fast_config):
    return run_sweep(Experiment("wide_bushy", 400, (10, 14, 18)), config=fast_config)


class TestAsciiPlot:
    def test_contains_all_markers(self, sweep):
        text = ascii_plot(sweep)
        for marker in MARKERS.values():
            assert marker in text

    def test_legend_and_axes(self, sweep):
        text = ascii_plot(sweep)
        assert "legend" in text
        assert "processors" in text
        assert "0.0s" in text

    def test_dimensions(self, sweep):
        text = ascii_plot(sweep, width=40, height=10)
        rows = [line for line in text.splitlines() if line.endswith("|")]
        assert len(rows) == 10
        assert all(len(row) == len(rows[0]) for row in rows)

    def test_explicit_y_max(self, sweep):
        text = ascii_plot(sweep, y_max=100.0)
        assert "100.0s" in text

    def test_invalid_y_max(self, sweep):
        with pytest.raises(ValueError):
            ascii_plot(sweep, y_max=0.0)

    def test_title_present(self, sweep):
        assert "Figure 11" in ascii_plot(sweep)


class TestLine:
    def test_endpoints(self):
        points = list(_line(0, 0, 5, 3))
        assert points[0] == (0, 0)
        assert points[-1] == (5, 3)

    def test_single_point(self):
        assert list(_line(2, 2, 2, 2)) == [(2, 2)]

    def test_vertical_and_horizontal(self):
        assert list(_line(0, 0, 0, 3)) == [(0, 0), (0, 1), (0, 2), (0, 3)]
        assert list(_line(0, 0, 3, 0)) == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_connected(self):
        points = list(_line(0, 0, 7, 4))
        for (x0, y0), (x1, y1) in zip(points, points[1:]):
            assert abs(x1 - x0) <= 1 and abs(y1 - y0) <= 1
