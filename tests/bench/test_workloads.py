"""Benchmark workload definitions and sweep machinery."""

import pytest

from repro.bench import (
    Experiment,
    LARGE_CARDINALITY,
    LARGE_PROCESSORS,
    PAPER_FIGURE_14,
    SMALL_CARDINALITY,
    SMALL_PROCESSORS,
    all_paper_experiments,
    paper_experiments,
    run_sweep,
)


class TestDefinitions:
    def test_paper_sizes(self):
        assert SMALL_CARDINALITY == 5_000
        assert LARGE_CARDINALITY == 40_000

    def test_processor_ranges(self):
        """Section 4.2: 20-80 for 5K; the 40K query was too large to
        run on fewer than 30 processors."""
        assert SMALL_PROCESSORS[0] == 20 and SMALL_PROCESSORS[-1] == 80
        assert LARGE_PROCESSORS[0] == 30 and LARGE_PROCESSORS[-1] == 80

    def test_ten_experiments(self):
        experiments = all_paper_experiments()
        assert len(experiments) == 10
        assert {e.size_label for e in experiments} == {"5K", "40K"}

    def test_figure_numbers(self):
        small, large = paper_experiments("wide_bushy")
        assert small.figure == large.figure == 11
        assert "Figure 11" in small.title

    def test_experiment_builds_tree_and_catalog(self):
        experiment = Experiment("right_bushy", 100, (5, 10))
        from repro.core import num_joins

        assert num_joins(experiment.tree()) == 9
        assert experiment.catalog().cardinality_of("R0") == 100

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError):
            paper_experiments("diagonal")

    def test_figure14_covers_all_cells(self):
        assert len(PAPER_FIGURE_14) == 10


class TestSweep:
    @pytest.fixture(scope="class")
    def tiny_sweep(self, fast_config):
        experiment = Experiment("wide_bushy", 400, (10, 16))
        return run_sweep(experiment, config=fast_config)

    def test_all_strategies_present(self, tiny_sweep):
        assert set(tiny_sweep.series) == {"SP", "SE", "RD", "FP"}

    def test_series_lengths(self, tiny_sweep):
        for series in tiny_sweep.series.values():
            assert len(series.response_times) == 2

    def test_series_at_and_best(self, tiny_sweep):
        series = tiny_sweep.series["SP"]
        assert series.at(10) == series.response_times[0]
        best_time, best_procs = series.best()
        assert best_time == min(series.response_times)
        assert best_procs in (10, 16)

    def test_best_cell(self, tiny_sweep):
        seconds, strategy, procs = tiny_sweep.best_cell()
        assert strategy in tiny_sweep.series
        assert seconds == tiny_sweep.series[strategy].best()[0]

    def test_table_text(self, tiny_sweep):
        table = tiny_sweep.table()
        assert "procs" in table
        assert "SP" in table and "FP" in table


class TestRunnerCache:
    def test_sweep_memoized(self, fast_config):
        from repro.bench import clear_cache, sweep

        clear_cache()
        experiment = Experiment("left_linear", 300, (10,))
        first = sweep(experiment, fast_config)
        second = sweep(experiment, fast_config)
        assert first is second
        clear_cache()
        third = sweep(experiment, fast_config)
        assert third is not first
