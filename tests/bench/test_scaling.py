"""Speedup/efficiency analysis."""

import pytest

from repro.bench import Experiment, run_sweep
from repro.bench.scaling import (
    best_scaling_strategy,
    scaling_curve,
    scaling_report,
)
from repro.bench.workloads import Series


def series(procs, times, name="FP"):
    return Series(name, tuple(procs), tuple(times))


class TestScalingCurve:
    def test_speedup_relative_to_smallest_machine(self):
        curve = scaling_curve(series((10, 20, 40), (8.0, 4.0, 2.0)))
        assert curve.speedups == (1.0, 2.0, 4.0)

    def test_efficiency(self):
        curve = scaling_curve(series((10, 20, 40), (8.0, 4.0, 4.0)))
        assert curve.efficiencies[0] == pytest.approx(1.0)
        assert curve.efficiencies[1] == pytest.approx(1.0)
        assert curve.efficiencies[2] == pytest.approx(0.5)

    def test_knee_perfect_scaling(self):
        curve = scaling_curve(series((10, 20, 40), (8.0, 4.0, 2.0)))
        assert curve.knee() == 40

    def test_knee_stops_at_flat_curve(self):
        curve = scaling_curve(series((10, 20, 40), (8.0, 7.9, 7.8)))
        assert curve.knee() == 10

    def test_knee_stops_at_rise(self):
        curve = scaling_curve(series((10, 20, 40), (8.0, 4.0, 9.0)))
        assert curve.knee() == 20


class TestOnRealSweep:
    @pytest.fixture(scope="class")
    def sweep(self, fast_config):
        return run_sweep(
            Experiment("wide_bushy", 2000, (10, 20, 40)), config=fast_config
        )

    def test_report_mentions_everything(self, sweep):
        text = scaling_report(sweep)
        assert "scaling relative to 10 processors" in text
        assert "knees:" in text
        for name in ("SP", "SE", "RD", "FP"):
            assert name in text

    def test_best_scaling_strategy_is_valid(self, sweep):
        assert best_scaling_strategy(sweep) in sweep.series

    def test_efficiencies_bounded(self, sweep):
        for name in sweep.series:
            curve = scaling_curve(sweep.series[name])
            assert all(e <= 1.5 for e in curve.efficiencies)
