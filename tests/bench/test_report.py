"""Claim evaluation and report formatting."""

import pytest

from repro.bench import (
    Experiment,
    claims_for_figure,
    evaluate_claims,
    figure14_table,
    figure_report,
    markdown_figure_section,
    run_sweep,
)


@pytest.fixture(scope="module")
def small_sweeps(fast_config):
    """Miniature versions of two figures (same shapes, smaller data)."""
    return {
        ("wide_bushy", "5K"): run_sweep(
            Experiment("wide_bushy", 800, (10, 20)), config=fast_config
        ),
        ("left_linear", "5K"): run_sweep(
            Experiment("left_linear", 800, (10, 20)), config=fast_config
        ),
    }


class TestClaims:
    def test_every_figure_has_claims(self):
        for figure in range(9, 14):
            claims = claims_for_figure(figure)
            assert claims
            assert all(c.figure == figure for c in claims)

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            claims_for_figure(15)

    def test_degeneration_claims_hold_on_miniature(self, small_sweeps):
        """SP ≡ SE ≡ RD on left-linear holds at any scale."""
        sweep = small_sweeps[("left_linear", "5K")]
        outcomes = evaluate_claims(sweep)
        by_desc = {o.claim.description: o.holds for o in outcomes}
        assert by_desc["SE degenerates to SP on a left-linear tree"]
        assert by_desc["RD degenerates to SP on a left-linear tree"]

    def test_outcome_line_format(self, small_sweeps):
        outcomes = evaluate_claims(small_sweeps[("left_linear", "5K")])
        for outcome in outcomes:
            assert outcome.line().startswith(("  [PASS]", "  [FAIL]"))


class TestReports:
    def test_figure_report_contains_tables_and_claims(self, small_sweeps):
        text = figure_report([small_sweeps[("wide_bushy", "5K")]])
        assert "procs" in text
        assert "best:" in text
        assert "[PASS]" in text or "[FAIL]" in text

    def test_figure14_table(self, small_sweeps):
        table = figure14_table(small_sweeps)
        assert "wide_bushy" in table
        assert "paper" in table.splitlines()[0]
        # Cells without sweeps are skipped, not errors.
        assert "right_linear" not in table

    def test_markdown_section(self, small_sweeps):
        text = markdown_figure_section(small_sweeps[("wide_bushy", "5K")])
        assert text.startswith("### Figure 11")
        assert "| procs |" in text
        assert "Best:" in text
        assert "- [" in text
