"""The analytic response-time model versus the simulator."""

import pytest

from repro.core import (
    Catalog,
    SHAPE_NAMES,
    get_strategy,
    make_shape,
    paper_relation_names,
)
from repro.engine.simulate import simulate_strategy
from repro.model import predict, predict_schedule, relative_error
from repro.sim import MachineConfig

NAMES = paper_relation_names(10)
CATALOG = Catalog.regular(NAMES, 5000)


class TestAgreementWithSimulator:
    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    def test_within_tolerance_at_40(self, shape, strategy, fast_config):
        tree = make_shape(shape, NAMES)
        predicted = predict(tree, CATALOG, strategy, 40, config=fast_config)
        simulated = simulate_strategy(tree, CATALOG, strategy, 40, config=fast_config)
        assert relative_error(
            predicted.response_time, simulated.response_time
        ) < 0.30

    def test_sp_nearly_exact(self, fast_config):
        """SP's phase structure has no pipelining, so the model should
        be very close."""
        tree = make_shape("left_linear", NAMES)
        predicted = predict(tree, CATALOG, "SP", 30, config=fast_config)
        simulated = simulate_strategy(tree, CATALOG, "SP", 30, config=fast_config)
        assert relative_error(
            predicted.response_time, simulated.response_time
        ) < 0.05


class TestModelStructure:
    def test_degenerations_exact(self):
        """SP, SE and RD emit identical schedules on a left-linear
        tree, so the model must give identical predictions."""
        tree = make_shape("left_linear", NAMES)
        times = {
            s: predict(tree, CATALOG, s, 24).response_time
            for s in ("SP", "SE", "RD")
        }
        assert len({round(t, 9) for t in times.values()}) == 1

    def test_task_finishes_monotone_for_sp(self):
        tree = make_shape("wide_bushy", NAMES)
        prediction = predict(tree, CATALOG, "SP", 24)
        finishes = [prediction.finish_of(i) for i in range(9)]
        assert finishes == sorted(finishes)

    def test_response_is_max_finish(self):
        tree = make_shape("right_bushy", NAMES)
        prediction = predict(tree, CATALOG, "RD", 24)
        assert prediction.response_time == max(
            prediction.task_finish.values()
        )

    def test_predict_schedule_equals_predict(self):
        tree = make_shape("wide_bushy", NAMES)
        schedule = get_strategy("FP").schedule(tree, CATALOG, 24)
        a = predict_schedule(schedule, CATALOG)
        b = predict(tree, CATALOG, "FP", 24)
        assert a.response_time == b.response_time

    def test_rd_wave_order_handled(self):
        """RD barriers can reference higher postorder indices; the
        model must order tasks topologically (regression guard)."""
        tree = make_shape("wide_bushy", NAMES)
        prediction = predict(tree, CATALOG, "RD", 24)
        assert prediction.response_time > 0


class TestModelBehaviours:
    def test_more_processors_reduce_sp_compute(self):
        tree = make_shape("left_linear", NAMES)
        config = MachineConfig.paper().scaled(
            process_startup=0.0, handshake=0.0
        )
        small = predict(tree, CATALOG, "SP", 20, config)
        large = predict(tree, CATALOG, "SP", 60, config)
        assert large.response_time < small.response_time

    def test_startup_grows_sp_prediction(self):
        tree = make_shape("left_linear", NAMES)
        light = predict(tree, CATALOG, "SP", 60, MachineConfig.paper())
        heavy = predict(
            tree, CATALOG, "SP", 60,
            MachineConfig.paper().scaled(process_startup=0.05),
        )
        assert heavy.response_time > light.response_time

    def test_bushy_penalty_applied(self):
        """A two-intermediate join (bushy pipeline step) must finish
        later than capacity alone would suggest."""
        tree = make_shape("left_bushy", NAMES)
        config = MachineConfig.paper()
        prediction = predict(tree, CATALOG, "FP", 40, config=config)
        simulated = simulate_strategy(tree, CATALOG, "FP", 40, config=config)
        assert relative_error(
            prediction.response_time, simulated.response_time
        ) < 0.30

    def test_relative_error_validation(self):
        with pytest.raises(ValueError):
            relative_error(1.0, 0.0)
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)
