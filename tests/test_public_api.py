"""Public-API consistency: every exported name resolves, and the
facade's signature only changes deliberately (snapshot test)."""

import importlib
import inspect

import pytest

#: Packages with a public surface (``__all__``).
PUBLIC_MODULES = [
    "repro",
    "repro.api",
    "repro.runner",
    "repro.core",
    "repro.sim",
    "repro.relational",
    "repro.bench",
    "repro.model",
    "repro.optimizer",
    "repro.xra",
    "repro.workload",
    "repro.service",
    "repro.faults",
    "repro.cluster",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_names_resolve(module_name):
    """Each name in ``__all__`` is importable (getattr succeeds) —
    catches stale exports after refactors."""
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    assert exported, f"{module_name} has no __all__"
    assert sorted(set(exported)) == sorted(exported), (
        f"{module_name}.__all__ has duplicates"
    )
    for name in exported:
        assert getattr(module, name, None) is not None, (
            f"{module_name}.__all__ exports unresolvable {name!r}"
        )


def test_engine_all_names_resolve():
    """repro.engine exports (including the removed aliases, which stay
    importable so the error can teach the migration)."""
    import repro.engine as engine

    for name in engine.__all__:
        assert getattr(engine, name, None) is not None


def test_facade_signature_snapshot():
    """The one signature everything depends on — frozen as the v1
    surface.  Update this snapshot only together with a deliberate,
    documented API change."""
    from repro import api

    assert str(inspect.signature(api.run)) == (
        "(tree_or_shape: 'Union[str, Node]', "
        "strategy: 'Union[str, Strategy]' = 'FP', "
        "processors: 'int' = 40, backend: 'str' = 'sim', *, "
        "catalog: 'Optional[Catalog]' = None, "
        "config: 'Optional[MachineConfig]' = None, "
        "cost_model: 'Optional[CostModel]' = None, "
        "skew_theta: 'float' = 0.0, cardinality: 'int' = 5000, "
        "relations=None, resolve=None, "
        "timeout: 'Optional[float]' = None, faults=None, "
        "deadline: 'Optional[float]' = None, **unknown)"
    )


def test_frozen_keyword_tuples_are_the_signature():
    """RUN_KEYWORDS / RUN_WORKLOAD_KEYWORDS are the documented freeze;
    they must list exactly the keyword-only parameters, in order."""
    from repro import api

    for func, frozen in (
        (api.run, api.RUN_KEYWORDS),
        (api.run_workload, api.RUN_WORKLOAD_KEYWORDS),
        (api.run_cluster, api.RUN_CLUSTER_KEYWORDS),
    ):
        keyword_only = [
            p.name
            for p in inspect.signature(func).parameters.values()
            if p.kind is inspect.Parameter.KEYWORD_ONLY
        ]
        assert keyword_only == list(frozen)


def test_facade_backends_are_stable():
    from repro import api

    assert api.BACKENDS == ("sim", "local", "threaded", "ideal")


def test_workload_facade_signature_snapshot():
    """The workload entry point's keyword surface is API too."""
    from repro import api

    params = inspect.signature(api.run_workload).parameters
    assert list(params)[0] == "mix_or_shape"
    for name in ("arrivals", "rate", "duration", "seed", "machine_size",
                 "policy", "share", "strategy", "cardinality", "clients",
                 "think_time", "queries_per_client", "max_concurrent",
                 "queue_limit", "memory_budget_bytes", "config",
                 "cost_model", "skew_theta", "faults", "recovery",
                 "max_retries", "retry_backoff", "rejected_retry_delay",
                 "deadline", "shed", "cancellations", "watchdog_limit"):
        assert name in params, f"run_workload lost {name!r}"
        assert params[name].kind is inspect.Parameter.KEYWORD_ONLY


def test_simulating_front_ends_share_keyword_surface():
    """The uniform execution-context keywords thread through every
    simulating entry point with the same names and defaults."""
    from repro.api import run
    from repro.engine.ideal import ideal_simulation
    from repro.engine.simulate import simulate_schedule, simulate_strategy
    from repro.sim.run import simulate

    for func in (run, simulate, simulate_schedule, simulate_strategy,
                 ideal_simulation):
        params = inspect.signature(func).parameters
        for name in ("config", "cost_model", "skew_theta"):
            assert name in params, f"{func.__name__} lost {name!r}"
        assert params["skew_theta"].default == 0.0
        assert params["cost_model"].default is None
        assert params["skew_theta"].kind is inspect.Parameter.KEYWORD_ONLY


def test_version_is_frozen():
    """``repro.__version__`` is part of the v1 freeze: a semver string
    that only changes together with a deliberate API change."""
    import re

    import repro

    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)


def test_top_level_lazy_exports():
    """Lazily-exposed top-level names resolve and stay lazy-safe."""
    import repro

    for name in ("run", "sweep", "MachineConfig", "SimulationResult",
                 "simulate_schedule", "execute_schedule", "XRAPlan",
                 "compile_schedule", "advise_strategy",
                 "two_phase_optimize"):
        assert getattr(repro, name) is not None
    with pytest.raises(AttributeError):
        repro.not_an_export
