"""FaultInjector against a single owned simulation: golden identity,
crash-stop aborts, stragglers, and interconnect faults."""

import pytest

from repro import api
from repro.faults import (
    CrashFault,
    FaultInjector,
    FaultSchedule,
    LinkFault,
    LinkFaultState,
    QueryAbortedError,
    StallFault,
)


def run_sim(fast_config, *, faults=None, strategy="FP", processors=12):
    return api.run(
        "wide_bushy", strategy, processors, "sim",
        cardinality=500, config=fast_config, faults=faults,
    )


class TestGoldenIdentity:
    """Satellite: injecting an *empty* schedule is a strict no-op —
    the run must be bit-for-bit identical to one with no injector at
    all, trace included."""

    def test_empty_schedule_is_bit_for_bit_noop(self, fast_config):
        plain = run_sim(fast_config)
        faulted = run_sim(fast_config, faults=FaultSchedule.empty())
        assert faulted == plain
        assert faulted.response_time == plain.response_time
        assert faulted.busy_time() == plain.busy_time()
        assert faulted.events == plain.events

    def test_empty_injector_object_is_noop_too(self, fast_config):
        plain = run_sim(fast_config)
        faulted = run_sim(
            fast_config, faults=FaultInjector(FaultSchedule.empty())
        )
        assert faulted == plain

    def test_post_horizon_faults_are_noops(self, fast_config):
        """A crash scheduled after the query finishes does not abort it
        or perturb its timing (the pending event itself still ticks the
        clock's event counter)."""
        plain = run_sim(fast_config)
        late = FaultSchedule(
            crashes=(CrashFault(processor=0, at=plain.response_time + 50),),
        )
        survived = run_sim(fast_config, faults=late)
        assert survived.response_time == plain.response_time
        assert survived.busy_time() == plain.busy_time()
        assert survived.result_tuples == plain.result_tuples


class TestCrash:
    def test_crash_aborts_the_query(self, fast_config):
        faults = FaultSchedule(crashes=(CrashFault(processor=0, at=0.5),))
        with pytest.raises(QueryAbortedError, match="processor 0 crashed"):
            run_sim(fast_config, faults=faults)

    def test_abort_carries_reason_and_time(self, fast_config):
        faults = FaultSchedule(crashes=(CrashFault(processor=1, at=0.75),))
        with pytest.raises(QueryAbortedError) as excinfo:
            run_sim(fast_config, faults=faults)
        assert excinfo.value.reason == "processor 1 crashed"
        assert excinfo.value.at == 0.75

    def test_crashed_run_replays_identically(self, fast_config):
        faults = FaultSchedule(crashes=(CrashFault(processor=2, at=1.0),))
        with pytest.raises(QueryAbortedError) as first:
            run_sim(fast_config, faults=faults)
        with pytest.raises(QueryAbortedError) as second:
            run_sim(fast_config, faults=faults)
        assert first.value.at == second.value.at
        assert first.value.reason == second.value.reason

    def test_crash_of_unused_processor_id_is_ignored(self, fast_config):
        """A crash on a node outside the simulated machine is not an
        event at all (the workload engine handles those)."""
        plain = run_sim(fast_config)
        faults = FaultSchedule(crashes=(CrashFault(processor=99, at=0.5),))
        assert run_sim(fast_config, faults=faults) == plain


class TestStall:
    def test_straggler_window_slows_the_query(self, fast_config):
        plain = run_sim(fast_config)
        stalled = run_sim(
            fast_config,
            faults=FaultSchedule(stalls=tuple(
                StallFault(processor=p, start=0.0, end=1e9, factor=8.0)
                for p in range(12)
            )),
        )
        assert stalled.response_time > plain.response_time
        assert stalled.result_tuples == plain.result_tuples

    def test_stall_replays_identically(self, fast_config):
        faults = FaultSchedule(
            stalls=(StallFault(processor=0, start=0.0, end=5.0, factor=4.0),)
        )
        assert run_sim(fast_config, faults=faults) == run_sim(
            fast_config, faults=faults
        )


class TestLink:
    def test_extra_delay_slows_the_query(self, fast_config):
        plain = run_sim(fast_config)
        delayed = run_sim(
            fast_config,
            faults=FaultSchedule(
                link_faults=(LinkFault(start=0.0, end=1e9, extra_delay=0.5),)
            ),
        )
        assert delayed.response_time > plain.response_time
        assert delayed.result_tuples == plain.result_tuples

    def test_total_loss_still_terminates(self, fast_config):
        """Loss applies to pipelined data batches only — never to EOS
        or store deliveries — so even loss=1.0 cannot deadlock."""
        plain = run_sim(fast_config)
        lossy = run_sim(
            fast_config,
            faults=FaultSchedule(
                link_faults=(LinkFault(start=0.0, end=1e9, loss=1.0),)
            ),
        )
        assert lossy.response_time > 0
        assert lossy.result_tuples < plain.result_tuples

    def test_loss_draws_replay_for_a_fixed_seed(self, fast_config):
        faults = FaultSchedule(
            link_faults=(LinkFault(start=0.0, end=1e9, loss=0.3),),
            seed=11,
        )
        assert run_sim(fast_config, faults=faults) == run_sim(
            fast_config, faults=faults
        )

    def test_link_state_counts_perturbations(self):
        state = LinkFaultState(
            (LinkFault(start=0.0, end=10.0, extra_delay=0.2, loss=1.0),),
            seed=0,
        )
        assert state.extra_delay(5.0) == pytest.approx(0.2)
        assert state.extra_delay(50.0) == 0.0
        assert state.drops(5.0)
        assert not state.drops(50.0)
        assert state.delayed == 1 and state.dropped == 1


class TestInjectorLifecycle:
    def test_injector_attaches_once(self, fast_config):
        injector = FaultInjector(FaultSchedule.empty())
        run_sim(fast_config, faults=injector)
        with pytest.raises(RuntimeError, match="attaches once"):
            run_sim(fast_config, faults=injector)

    def test_injector_rejects_non_schedule(self):
        with pytest.raises(TypeError, match="FaultSchedule"):
            FaultInjector([CrashFault(processor=0, at=1.0)])

    def test_real_data_backends_reject_faults(self):
        faults = FaultSchedule(crashes=(CrashFault(processor=0, at=1.0),))
        with pytest.raises(ValueError, match="simulating backends"):
            api.run(
                "wide_bushy", "SE", 4, "local",
                cardinality=100, faults=faults,
            )
