"""FaultSchedule: validation, seeded generation, serialization."""

import pytest

from repro.faults import CrashFault, FaultSchedule, LinkFault, StallFault


class TestValidation:
    def test_crash_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="non-negative"):
            CrashFault(processor=-1, at=1.0)
        with pytest.raises(ValueError, match="non-negative"):
            CrashFault(processor=0, at=-1.0)
        with pytest.raises(ValueError, match="after the crash"):
            CrashFault(processor=0, at=5.0, repair_at=5.0)

    def test_stall_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="extent"):
            StallFault(processor=0, start=2.0, end=2.0)
        with pytest.raises(ValueError, match="factor"):
            StallFault(processor=0, start=0.0, end=1.0, factor=0.0)

    def test_link_rejects_bad_fields(self):
        with pytest.raises(ValueError, match="extent"):
            LinkFault(start=3.0, end=1.0)
        with pytest.raises(ValueError, match="probability"):
            LinkFault(start=0.0, end=1.0, loss=1.5)

    def test_generate_rejects_bad_dimensions(self):
        with pytest.raises(ValueError, match="at least one"):
            FaultSchedule.generate(machine_size=0, horizon=10.0)
        with pytest.raises(ValueError, match="horizon"):
            FaultSchedule.generate(machine_size=4, horizon=0.0)


class TestEmpty:
    def test_empty_schedule(self):
        schedule = FaultSchedule.empty()
        assert schedule.is_empty
        assert schedule.event_count == 0

    def test_zero_rates_generate_empty(self):
        schedule = FaultSchedule.generate(machine_size=8, horizon=100.0)
        assert schedule.is_empty


class TestGenerate:
    def test_same_seed_same_schedule(self):
        kwargs = dict(
            machine_size=16, horizon=200.0, seed=9,
            crash_rate=0.05, repair_time=20.0,
            stall_rate=0.05, link_rate=0.02, link_delay=0.1,
        )
        assert FaultSchedule.generate(**kwargs) == FaultSchedule.generate(
            **kwargs
        )

    def test_different_seed_different_schedule(self):
        a = FaultSchedule.generate(
            machine_size=16, horizon=500.0, seed=1, crash_rate=0.05
        )
        b = FaultSchedule.generate(
            machine_size=16, horizon=500.0, seed=2, crash_rate=0.05
        )
        assert a != b

    def test_category_streams_are_independent(self):
        """Adding stalls must not move the crash draws (each category
        has its own derived RNG stream)."""
        just_crashes = FaultSchedule.generate(
            machine_size=16, horizon=300.0, seed=4, crash_rate=0.03
        )
        both = FaultSchedule.generate(
            machine_size=16, horizon=300.0, seed=4, crash_rate=0.03,
            stall_rate=0.1,
        )
        assert both.crashes == just_crashes.crashes
        assert both.stalls and not just_crashes.stalls

    def test_events_stay_inside_the_horizon(self):
        schedule = FaultSchedule.generate(
            machine_size=8, horizon=50.0, seed=3,
            crash_rate=0.2, stall_rate=0.2, link_rate=0.2,
        )
        assert schedule.event_count > 0
        for crash in schedule.crashes:
            assert 0.0 <= crash.at < 50.0
            assert 0 <= crash.processor < 8
        for stall in schedule.stalls:
            assert 0.0 <= stall.start < 50.0

    def test_repair_time_offsets_every_crash(self):
        schedule = FaultSchedule.generate(
            machine_size=8, horizon=100.0, seed=5,
            crash_rate=0.1, repair_time=30.0,
        )
        assert schedule.crashes
        for crash in schedule.crashes:
            assert crash.repair_at == crash.at + 30.0


class TestSerialization:
    def test_payload_round_trip(self):
        schedule = FaultSchedule.generate(
            machine_size=8, horizon=100.0, seed=6,
            crash_rate=0.05, repair_time=10.0,
            stall_rate=0.05, link_rate=0.05, link_delay=0.2, link_loss=0.3,
        )
        assert FaultSchedule.from_payload(schedule.to_payload()) == schedule

    def test_payload_is_json_safe(self):
        import json

        schedule = FaultSchedule(
            crashes=(CrashFault(processor=1, at=2.0),),
            stalls=(StallFault(processor=0, start=1.0, end=3.0),),
            link_faults=(LinkFault(start=0.0, end=5.0, extra_delay=0.1),),
            seed=7,
        )
        wire = json.loads(json.dumps(schedule.to_payload()))
        assert FaultSchedule.from_payload(wire) == schedule

    def test_unknown_payload_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultSchedule.from_payload({"crashs": []})

    def test_schedule_is_hashable(self):
        a = FaultSchedule(crashes=(CrashFault(processor=0, at=1.0),))
        b = FaultSchedule(crashes=(CrashFault(processor=0, at=1.0),))
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
