"""Resilience metrics, the fault-rate sweep, and the fault-aware
front-ends: HTML report section, query service, and CLI."""

import json

import pytest

from repro.faults import CrashFault, FaultSchedule, fault_rate_sweep
from repro.service import QueryService


@pytest.fixture(scope="module")
def sweep_points(fast_config):
    return fault_rate_sweep(
        strategies=("SE",),
        crash_rates=(0.0, 0.05),
        recovery="restart",
        duration=30.0,
        rate=0.1,
        machine_size=16,
        seed=2,
        repair_time=5.0,
        cardinality=500,
        config=fast_config,
    )


class TestResiliencePoint:
    def test_sweep_covers_the_grid(self, sweep_points):
        assert [(p.strategy, p.crash_rate) for p in sweep_points] == [
            ("SE", 0.0), ("SE", 0.05)
        ]
        for point in sweep_points:
            assert point.recovery == "restart"
            assert point.offered >= point.completed
            assert point.goodput >= 0

    def test_zero_rate_cell_is_fault_free(self, sweep_points):
        clean = sweep_points[0]
        assert clean.faults_injected == 0
        assert clean.retries == 0
        assert clean.wasted_seconds == 0
        assert clean.mttr is None

    def test_rows_are_jsonl_ready(self, sweep_points):
        for point in sweep_points:
            row = point.row()
            assert row["strategy"] == "SE"
            assert json.loads(json.dumps(row)) == row

    def test_unknown_strategy_rejected(self):
        with pytest.raises((KeyError, ValueError)):
            fault_rate_sweep(
                strategies=("NOPE",), crash_rates=(0.0,), duration=5.0
            )


class TestReportSection:
    def test_resilience_html_renders(self, sweep_points):
        from repro.report import render_report, resilience_html

        html = resilience_html(sweep_points)
        assert "<svg" in html
        assert "Goodput versus crash rate" in html
        assert "restart" in html
        document = render_report({}, resilience_points=sweep_points)
        assert "resilience under crash-stop faults" in document

    def test_report_omits_section_without_points(self):
        from repro.report import render_report

        assert "resilience" not in render_report({})


class TestQueryService:
    REQUEST = {
        "op": "workload", "shape": "wide_bushy", "rate": 0.1,
        "duration": 30, "cardinality": 500, "machine_size": 16,
        "strategy": "SE",
    }

    def test_workload_accepts_fault_payload(self):
        faults = FaultSchedule(
            crashes=(CrashFault(processor=1, at=2.0, repair_at=8.0),)
        )
        response = QueryService().handle({
            **self.REQUEST,
            "faults": faults.to_payload(), "recovery": "restart",
        })
        assert response["ok"], response
        assert response["resilience"]["faults_injected"] == 1

    def test_fault_free_response_has_no_resilience_block(self):
        response = QueryService().handle(dict(self.REQUEST))
        assert response["ok"]
        assert "resilience" not in response

    def test_bad_fault_payload_is_an_error(self):
        response = QueryService().handle({
            **self.REQUEST, "faults": {"bogus": []},
        })
        assert not response["ok"]
        assert "fault schedule" in response["error"]


class TestCli:
    def test_faults_subcommand_prints_the_table(self, capsys, tmp_path):
        from repro.cli import main

        jsonl = tmp_path / "resilience.jsonl"
        code = main([
            "faults", "--strategies", "SE", "--crash-rates", "0,0.05",
            "--duration", "20", "--rate", "0.1", "--machine-size", "16",
            "--cardinality", "500", "--repair-time", "5",
            "--jsonl", str(jsonl),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "goodput" in out
        rows = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert [(r["strategy"], r["crash_rate"]) for r in rows] == [
            ("SE", 0.0), ("SE", 0.05)
        ]

    def test_workload_crash_rate_flag(self, capsys):
        from repro.cli import main

        code = main([
            "workload", "--rate", "0.1", "--duration", "20",
            "--machine-size", "16", "--cardinality", "500",
            "--crash-rate", "0.05", "--repair-time", "5",
            "--recovery", "restart", "--seed", "3",
        ])
        assert code == 0
