"""Faulted sweeps through the parallel runner: the fault-schedule
axis, deterministic aborted rows, worker-count invariance, caching."""

import pytest

from repro.faults import CrashFault, FaultSchedule
from repro.runner import Job, SweepSpec, run_sweep

EARLY_CRASH = FaultSchedule(crashes=(CrashFault(processor=1, at=0.5),))


def tiny_spec(**kwargs):
    defaults = dict(
        shapes=("wide_bushy",),
        strategies=("SP", "FP"),
        processors=(12,),
        cardinalities=(500,),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestSpecAxis:
    def test_default_axis_is_fault_free(self):
        spec = tiny_spec()
        assert spec.fault_schedules == (None,)
        assert all(job.faults is None for job in spec.expand())

    def test_axis_multiplies_the_grid(self):
        spec = tiny_spec(fault_schedules=(None, EARLY_CRASH))
        assert len(spec) == 4
        jobs = spec.expand()
        assert len(jobs) == 4
        assert [job.faults for job in jobs] == [
            None, None, EARLY_CRASH, EARLY_CRASH
        ]

    def test_axis_validates_entries(self):
        with pytest.raises(ValueError, match="FaultSchedule or None"):
            tiny_spec(fault_schedules=({"crashes": []},))
        with pytest.raises(ValueError, match="empty"):
            tiny_spec(fault_schedules=())

    def test_fault_free_payload_has_no_faults_key(self):
        """Cache compatibility: fault-free jobs must keep their
        pre-fault-axis content addresses."""
        job = Job(
            shape="wide_bushy", strategy="FP", processors=12,
            cardinality=500,
        )
        assert "faults" not in job.payload()
        faulted = Job(
            shape="wide_bushy", strategy="FP", processors=12,
            cardinality=500, faults=EARLY_CRASH,
        )
        assert "faults" in faulted.payload()
        assert faulted.key() != job.key()

    def test_label_mentions_faults(self):
        job = Job(
            shape="wide_bushy", strategy="FP", processors=12,
            cardinality=500, faults=EARLY_CRASH,
        )
        assert "faults=1" in job.label()


class TestExecution:
    def test_aborted_jobs_produce_deterministic_rows(self):
        spec = tiny_spec(fault_schedules=(EARLY_CRASH,))
        run = run_sweep(spec, workers=1, cache=False)
        for outcome in run.outcomes:
            metrics = outcome.row["metrics"]
            assert metrics["aborted"] is True
            assert metrics["aborted_at"] == 0.5
            assert metrics["reason"] == "processor 1 crashed"

    def test_rows_are_worker_count_invariant(self):
        """Acceptance: the same faulted spec produces identical rows
        at workers=1 and workers=4."""
        spec = tiny_spec(fault_schedules=(None, EARLY_CRASH))
        serial = run_sweep(spec, workers=1, cache=False)
        parallel = run_sweep(spec, workers=4, cache=False)
        assert [o.row for o in serial.outcomes] == [
            o.row for o in parallel.outcomes
        ]

    def test_aborted_rows_cache_and_replay(self, tmp_path):
        spec = tiny_spec(strategies=("FP",), fault_schedules=(EARLY_CRASH,))
        first = run_sweep(spec, workers=1, cache_dir=tmp_path)
        second = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert [o.source for o in second.outcomes] == ["cache"]
        assert [o.row for o in first.outcomes] == [
            o.row for o in second.outcomes
        ]

    def test_late_faults_leave_metrics_untouched(self):
        """A fault schedule that never fires yields the normal metrics
        row (plus the payload's faults key)."""
        late = FaultSchedule(crashes=(CrashFault(processor=0, at=1e6),))
        plain = run_sweep(
            tiny_spec(strategies=("FP",)), workers=1, cache=False
        )
        faulted = run_sweep(
            tiny_spec(strategies=("FP",), fault_schedules=(late,)),
            workers=1, cache=False,
        )
        assert (
            faulted.outcomes[0].row["metrics"]["response_time"]
            == plain.outcomes[0].row["metrics"]["response_time"]
        )
