"""Recovery policies on the shared-machine workload engine: fail,
restart (backoff through admission), reassign (reuse materialized
subtrees), repair, degradation, and the resilience metrics."""

import pytest

from repro import api
from repro.faults import CrashFault, FaultSchedule, StallFault
from repro.workload import (
    ExclusivePolicy,
    QuerySpec,
    RECOVERY_POLICIES,
    WorkloadEngine,
)

SE_QUERY = QuerySpec("wide_bushy", 2000, "SE")
FP_QUERY = QuerySpec("wide_bushy", 2000, "FP")

#: One node dies mid-query and rejoins 9 seconds later.
MID_QUERY_CRASH = FaultSchedule(
    crashes=(CrashFault(processor=2, at=3.0, repair_at=12.0),)
)


def crashy_engine(fast_config, *, faults=MID_QUERY_CRASH, **kwargs):
    return WorkloadEngine(16, config=fast_config, faults=faults, **kwargs)


class TestConstruction:
    def test_recovery_must_be_known(self, fast_config):
        assert RECOVERY_POLICIES == ("fail", "restart", "reassign")
        with pytest.raises(ValueError, match="recovery"):
            WorkloadEngine(8, config=fast_config, recovery="reboot")

    def test_faults_must_be_schedule_or_injector(self, fast_config):
        with pytest.raises(TypeError, match="FaultSchedule"):
            WorkloadEngine(8, config=fast_config, faults="crash please")

    def test_retry_knobs_validated(self, fast_config):
        with pytest.raises(ValueError, match="max_retries"):
            WorkloadEngine(8, config=fast_config, max_retries=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            WorkloadEngine(8, config=fast_config, retry_backoff=-0.5)

    def test_rejected_retry_delay_is_configurable(self, fast_config):
        """Satellite: the magic closed-loop retry pause is a keyword
        now (the module constant stays the default)."""
        from repro.workload.engine import REJECTED_RETRY_DELAY

        engine = WorkloadEngine(8, config=fast_config)
        assert engine.rejected_retry_delay == REJECTED_RETRY_DELAY
        tuned = WorkloadEngine(
            8, config=fast_config, rejected_retry_delay=0.5
        )
        assert tuned.rejected_retry_delay == 0.5
        with pytest.raises(ValueError, match="rejected_retry_delay"):
            WorkloadEngine(8, config=fast_config, rejected_retry_delay=0.0)


class TestFailPolicy:
    def test_crash_fails_the_query(self, fast_config):
        engine = crashy_engine(fast_config, recovery="fail")
        result = engine.run_open([(0.0, SE_QUERY)])
        record = result.records[0]
        assert record.failed
        assert record.attempts == 1
        assert record.aborts == [3.0]
        assert record.completed is None
        assert "crashed" in record.error
        assert result.failed_count() == 1
        assert result.faults_injected == 1

    def test_wasted_work_is_accounted(self, fast_config):
        engine = crashy_engine(fast_config, recovery="fail")
        result = engine.run_open([(0.0, SE_QUERY)])
        assert result.wasted_seconds() > 0
        assert 0 < result.wasted_fraction() <= 1.0


class TestRestartPolicy:
    def test_crash_then_retry_completes(self, fast_config):
        engine = crashy_engine(fast_config, recovery="restart")
        result = engine.run_open([(0.0, SE_QUERY)])
        record = result.records[0]
        assert not record.failed
        assert record.attempts == 2
        assert record.aborts == [3.0]
        assert record.completed is not None
        assert result.retries_total() == 1
        assert result.repairs == 1

    def test_mttr_measures_crash_to_completion(self, fast_config):
        engine = crashy_engine(fast_config, recovery="restart")
        result = engine.run_open([(0.0, SE_QUERY)])
        record = result.records[0]
        assert result.mttr() == pytest.approx(record.completed - 3.0)

    def test_retry_budget_exhausts_to_failure(self, fast_config):
        """Crashes on every attempt burn max_retries and then fail."""
        faults = FaultSchedule(crashes=tuple(
            CrashFault(processor=2, at=float(at), repair_at=float(at) + 0.5)
            for at in (3, 6, 9, 12, 15, 18, 21, 24)
        ))
        engine = crashy_engine(
            fast_config, faults=faults, recovery="restart",
            max_retries=2, retry_backoff=0.1,
        )
        result = engine.run_open([(0.0, SE_QUERY)])
        record = result.records[0]
        assert record.failed
        assert record.attempts == 3  # initial + 2 retries
        assert len(record.aborts) == 3

    def test_fault_summary_line(self, fast_config):
        engine = crashy_engine(fast_config, recovery="restart")
        result = engine.run_open([(0.0, SE_QUERY)])
        assert "faults:" in result.summary()
        assert "1 crashes" in result.summary()


class TestReassignPolicy:
    def test_reassign_reuses_materialized_results(self, fast_config):
        engine = crashy_engine(fast_config, recovery="reassign")
        result = engine.run_open([(0.0, SE_QUERY)])
        record = result.records[0]
        assert not record.failed
        assert record.attempts == 2
        assert record.reused_tasks >= 1

    def test_reassign_is_no_slower_than_restart(self, fast_config):
        restart = crashy_engine(fast_config, recovery="restart").run_open(
            [(0.0, SE_QUERY)]
        )
        reassign = crashy_engine(fast_config, recovery="reassign").run_open(
            [(0.0, SE_QUERY)]
        )
        assert (
            reassign.records[0].completed <= restart.records[0].completed
        )

    def test_fp_reassign_degenerates_to_restart(self, fast_config):
        """FP pipelines everything, so a crashed FP query has no
        materialized subtree to reuse — reassign still completes, just
        from scratch."""
        engine = crashy_engine(fast_config, recovery="reassign")
        result = engine.run_open([(0.0, FP_QUERY)])
        record = result.records[0]
        assert not record.failed
        assert record.attempts == 2
        assert record.reused_tasks == 0


class TestDegradedMachine:
    def test_fp_crash_never_deadlocks_the_clock(self, fast_config):
        """Acceptance: a permanently lost node mid-FP-pipeline must not
        hang the drain — the stuck query is shed with an error."""
        permanent = FaultSchedule(
            crashes=(CrashFault(processor=2, at=3.0),)
        )
        engine = crashy_engine(
            fast_config, faults=permanent, recovery="restart"
        )
        result = engine.run_open([(0.0, FP_QUERY)])
        record = result.records[0]
        assert record.failed
        assert "degraded" in record.error
        assert result.makespan < 60.0

    def test_smaller_queries_pass_a_stuck_head(self, fast_config):
        """Shedding the infeasible head query frees the queue for
        queries that still fit on the survivors."""
        permanent = FaultSchedule(
            crashes=(CrashFault(processor=2, at=1.0),)
        )
        engine = WorkloadEngine(
            16, policy=ExclusivePolicy(10), config=fast_config,
            faults=permanent, recovery="fail",
        )
        small = QuerySpec("wide_bushy", 500, "SE")
        result = engine.run_open([(0.0, SE_QUERY), (0.5, small)])
        assert result.records[0].failed  # crashed mid-flight
        assert result.records[1].completed is not None
        assert 2 not in result.records[1].processors

    def test_repair_restores_capacity(self, fast_config):
        """After repair the full machine is allocatable again."""
        engine = crashy_engine(fast_config, recovery="restart")
        result = engine.run_open([(0.0, SE_QUERY), (0.1, SE_QUERY)])
        assert all(r.completed is not None for r in result.records)
        assert result.repairs == 1


class TestDeterminismAndIdentity:
    def test_empty_schedule_workload_identity(self, fast_config):
        """Golden: faults=empty reproduces the fault-free workload rows
        bit-for-bit."""
        kwargs = dict(
            arrivals="poisson", rate=0.2, duration=40.0, seed=5,
            machine_size=16, cardinality=500, config=fast_config,
        )
        plain = api.run_workload("wide_bushy", **kwargs)
        empty = api.run_workload(
            "wide_bushy", faults=FaultSchedule.empty(),
            recovery="restart", **kwargs
        )
        assert [r.row() for r in plain.records] == [
            r.row() for r in empty.records
        ]

    def test_faulted_workload_replays_bit_for_bit(self, fast_config):
        faults = FaultSchedule.generate(
            machine_size=16, horizon=40.0, seed=3,
            crash_rate=0.05, repair_time=5.0, stall_rate=0.05,
        )
        kwargs = dict(
            arrivals="poisson", rate=0.3, duration=40.0, seed=5,
            machine_size=16, cardinality=500, config=fast_config,
            faults=faults, recovery="reassign",
        )
        first = api.run_workload("wide_bushy", **kwargs)
        second = api.run_workload("wide_bushy", **kwargs)
        assert [r.row() for r in first.records] == [
            r.row() for r in second.records
        ]
        assert first.faults_injected == second.faults_injected

    def test_stalls_delay_hosted_queries(self, fast_config):
        stalls = FaultSchedule(stalls=tuple(
            StallFault(processor=p, start=0.0, end=1e9, factor=6.0)
            for p in range(16)
        ))
        plain = crashy_engine(fast_config, faults=None).run_open(
            [(0.0, SE_QUERY)]
        )
        slowed = crashy_engine(fast_config, faults=stalls).run_open(
            [(0.0, SE_QUERY)]
        )
        assert (
            slowed.records[0].service_time > plain.records[0].service_time
        )

    def test_record_rows_carry_resilience_fields(self, fast_config):
        engine = crashy_engine(fast_config, recovery="restart")
        result = engine.run_open([(0.0, SE_QUERY)])
        row = result.records[0].row()
        for key in ("attempts", "aborts", "wasted_seconds", "failed",
                    "reused_tasks"):
            assert key in row

    def test_resilience_summary_shape(self, fast_config):
        engine = crashy_engine(fast_config, recovery="restart")
        result = engine.run_open([(0.0, SE_QUERY)])
        summary = result.resilience_summary()
        assert summary["faults_injected"] == 1
        assert summary["retries"] == 1
        assert summary["failed"] == 0
        assert summary["wasted_seconds"] > 0
        assert summary["mttr"] is not None
