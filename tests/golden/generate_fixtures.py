"""Regenerate the golden-equivalence fixtures.

The fixtures in this directory were produced by the *pre-batching*
simulator (the PR-5 seed) and pin its exact observable behaviour:
JSONL rows byte for byte, including response times, utilization and
logical event counts.  The batched/coalesced event core must reproduce
them unchanged — batching is an internal representation change, not a
semantics change.

Run from the repository root::

    PYTHONPATH=src python tests/golden/generate_fixtures.py

Regenerating on purpose (after a *deliberate, documented* semantics
change) rewrites the files; tests/sim/test_golden_identity.py then
pins the new behaviour.
"""

from __future__ import annotations

from pathlib import Path

HERE = Path(__file__).resolve().parent


def sweep_spec():
    """The pinned runner grid: every strategy, mixed processor counts,
    a skewed point, and a second shape for structural breadth."""
    from repro.runner import SweepSpec

    return SweepSpec(
        shapes=("wide_bushy", "left_linear"),
        strategies=("SP", "SE", "RD", "FP"),
        processors=(20, 40),
        cardinalities=(2_000,),
        skew_thetas=(0.0, 0.7),
    )


def sweep_rows():
    from repro.runner import run_sweep

    run = run_sweep(sweep_spec(), workers=1, cache=False)
    return run.rows()


def workload_open(**overrides):
    """Open-loop poisson traffic, exclusive allocation (the fused path).

    ``overrides`` let the identity tests re-run the pinned workload
    with strictly-equivalent knobs (e.g. ``scheduler="fifo"``) and
    demand the same bytes.
    """
    from repro import api

    return api.run_workload(
        "wide_bushy",
        arrivals="poisson",
        rate=0.4,
        duration=40.0,
        seed=7,
        machine_size=40,
        policy="exclusive",
        strategy="FP",
        cardinality=2_000,
        **overrides,
    )


def workload_closed(**overrides):
    """Closed-loop traffic on a *shared* allocation policy plus a
    deadline — paths on which event coalescing must stand down."""
    from repro import api

    return api.run_workload(
        "paper",
        arrivals="closed",
        clients=3,
        think_time=5.0,
        queries_per_client=4,
        duration=500.0,
        seed=11,
        machine_size=40,
        policy="round_robin",
        share=16,
        strategy="SE",
        cardinality=1_000,
        deadline=400.0,
        **overrides,
    )


def main() -> None:
    from repro.runner.results import write_jsonl

    write_jsonl(HERE / "runner_sweep.jsonl", sweep_rows())
    workload_open().write_jsonl(HERE / "workload_open.jsonl")
    workload_closed().write_jsonl(HERE / "workload_closed.jsonl")
    for name in ("runner_sweep", "workload_open", "workload_closed"):
        path = HERE / f"{name}.jsonl"
        print(f"{path.name}: {len(path.read_bytes())} bytes")


if __name__ == "__main__":
    main()
