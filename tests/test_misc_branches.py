"""Small behavioural branches not covered elsewhere."""

import pytest

from repro.core import (
    Catalog,
    InputSpec,
    Join,
    JoinTask,
    Leaf,
    ParallelSchedule,
    get_strategy,
    make_shape,
    paper_relation_names,
)
from repro.core.memory import task_memory
from repro.core.trees import joins_postorder
from repro.engine.local import execute_schedule, reference_result
from repro.relational import make_wisconsin


class TestBuildSideRight:
    def build_right_schedule(self, catalog):
        tree = Join(Leaf("A"), Leaf("B"))
        (join,) = joins_postorder(tree)
        task = JoinTask(
            index=0, join=join, processors=(0, 1), algorithm="simple",
            left_input=InputSpec("base", "A"),
            right_input=InputSpec("base", "B"),
            build_side="right",
        )
        return ParallelSchedule("X", tree, 2, [task]).validate()

    def test_local_executor_respects_build_side(self):
        relations = {
            "A": make_wisconsin(60, seed=1),
            "B": make_wisconsin(60, seed=2),
        }
        catalog = Catalog.regular(["A", "B"], 60)
        schedule = self.build_right_schedule(catalog)
        result = execute_schedule(schedule, relations)
        tree = schedule.tree
        assert result.relation.same_bag(reference_result(tree, relations))

    def test_memory_accounting_uses_build_operand(self):
        catalog = Catalog({"A": 1000, "B": 10})
        schedule = self.build_right_schedule(catalog)
        (tm,) = task_memory(schedule, catalog)
        # Build side is the right operand (10 tuples over 2 processors).
        assert tm.table_tuples == pytest.approx(5.0)


class TestDescribe:
    def test_non_contiguous_processors_rendered(self):
        tree = Join(Leaf("A"), Leaf("B"))
        (join,) = joins_postorder(tree)
        task = JoinTask(
            index=0, join=join, processors=(0, 2, 5), algorithm="simple",
            left_input=InputSpec("base", "A"),
            right_input=InputSpec("base", "B"),
        )
        schedule = ParallelSchedule("X", tree, 6, [task]).validate()
        assert "0,2,5" in schedule.describe()


class TestCriticalPathRD:
    def test_rd_path_crosses_waves(self, fast_config):
        from repro.engine import critical_path
        from repro.sim.run import simulate

        names = paper_relation_names(6)
        catalog = Catalog.regular(names, 600)
        tree = make_shape("right_bushy", names)
        schedule = get_strategy("RD").schedule(tree, catalog, 8)
        result = simulate(schedule, catalog, fast_config)
        path = critical_path(result)
        assert path[0].completion == pytest.approx(result.response_time)
        # The pipeline wave was barriered behind wave 0, so the path
        # has at least two entries.
        assert len(path) >= 2


class TestAdviceRunnerUp:
    def test_runner_up_populated(self):
        from repro.optimizer import advise_strategy

        names = paper_relation_names(10)
        catalog = Catalog.regular(names, 40000)
        advice = advise_strategy(make_shape("wide_bushy", names), catalog, 80)
        assert advice.runner_up == "FP"
