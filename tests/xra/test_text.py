"""Textual XRA: formatting, parsing, round trips."""

import pytest

from repro.core import Catalog, SHAPE_NAMES, make_shape, paper_relation_names
from repro.xra import (
    format_plan,
    format_processors,
    generate_plan,
    generate_plan_text,
    parse_plan,
    parse_processors,
)

NAMES = paper_relation_names(8)
CATALOG = Catalog.regular(NAMES, 400)


class TestProcessorRanges:
    def test_contiguous(self):
        assert format_processors((0, 1, 2, 3)) == "0-3"

    def test_singleton(self):
        assert format_processors((5,)) == "5"

    def test_mixed(self):
        assert format_processors((0, 1, 4, 7, 8)) == "0-1,4,7-8"

    def test_parse_roundtrip(self):
        for procs in [(0,), (0, 1, 2), (3, 5, 6, 9)]:
            assert parse_processors(format_processors(procs)) == procs

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_processors(())


class TestPlanText:
    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    def test_text_roundtrip(self, strategy, shape):
        plan = generate_plan(make_shape(shape, NAMES), CATALOG, strategy, 12)
        text = format_plan(plan)
        parsed = parse_plan(text)
        assert parsed.strategy == plan.strategy
        assert parsed.processors == plan.processors
        for a, b in zip(plan.statements, parsed.statements):
            assert a.algorithm == b.algorithm
            assert a.build_side == b.build_side
            assert a.left == b.left
            assert a.right == b.right
            assert a.processors == b.processors
            assert a.after == b.after

    def test_header_format(self):
        text = generate_plan_text(
            make_shape("left_linear", NAMES), CATALOG, "SP", 4
        )
        assert text.splitlines()[0] == "xra strategy=SP processors=4"

    def test_statement_format(self):
        text = generate_plan_text(
            make_shape("left_linear", NAMES), CATALOG, "FP", 12
        )
        assert "join[pipelining,build=left]" in text
        assert "scan(R0)" in text

    def test_parse_errors(self):
        with pytest.raises(ValueError, match="empty"):
            parse_plan("")
        with pytest.raises(ValueError, match="header"):
            parse_plan("not xra\n%0 := ...")
        with pytest.raises(ValueError, match="statement"):
            parse_plan("xra strategy=SP processors=2\ngarbage line")

    def test_parsed_plan_is_executable(self):
        text = generate_plan_text(
            make_shape("right_bushy", NAMES), CATALOG, "RD", 12
        )
        schedule = parse_plan(text).to_schedule()
        from repro.sim import MachineConfig, simulate

        result = simulate(schedule, CATALOG, MachineConfig.paper())
        assert result.response_time > 0
