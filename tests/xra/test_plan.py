"""XRA plans: schedule equivalence and tree reconstruction."""

import pytest

from repro.core import (
    Catalog,
    SHAPE_NAMES,
    get_strategy,
    make_shape,
    paper_relation_names,
    structurally_equal,
)
from repro.xra import JoinStatement, Operand, XRAPlan, generate_plan

NAMES = paper_relation_names(8)
CATALOG = Catalog.regular(NAMES, 400)


def schedule_for(strategy, shape, processors=12):
    return get_strategy(strategy).schedule(
        make_shape(shape, NAMES), CATALOG, processors
    )


class TestRoundTrip:
    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    def test_schedule_plan_schedule(self, strategy, shape):
        schedule = schedule_for(strategy, shape)
        plan = XRAPlan.from_schedule(schedule)
        back = plan.to_schedule()
        assert structurally_equal(back.tree, schedule.tree)
        assert back.processors == schedule.processors
        for a, b in zip(schedule.tasks, back.tasks):
            assert a.processors == b.processors
            assert a.algorithm == b.algorithm
            assert a.left_input.mode == b.left_input.mode
            assert a.right_input.mode == b.right_input.mode
            assert tuple(sorted(a.start_after)) == tuple(sorted(b.start_after))

    def test_metrics_agree(self):
        schedule = schedule_for("SP", "left_linear")
        plan = XRAPlan.from_schedule(schedule)
        assert plan.operation_processes() == schedule.operation_processes()
        assert plan.stream_count() == schedule.stream_count()


class TestTreeReconstruction:
    def test_tree_from_statements(self):
        schedule = schedule_for("RD", "right_bushy")
        plan = XRAPlan.from_schedule(schedule)
        assert structurally_equal(plan.tree(), schedule.tree)

    def test_non_postorder_statements_remapped(self):
        """Statements in any dependency order become a valid schedule."""
        statements = [
            JoinStatement(0, "pipelining", "left", Operand.scan("C"),
                          Operand.scan("D"), (2, 3)),
            JoinStatement(1, "pipelining", "left", Operand.scan("A"),
                          Operand.scan("B"), (0, 1)),
            JoinStatement(2, "pipelining", "left", Operand.pipe(1),
                          Operand.pipe(0), (4, 5)),
        ]
        plan = XRAPlan("X", 6, statements)
        schedule = plan.to_schedule()
        # Postorder: (A⋈B) is the left child → index 0 after remap.
        assert schedule.tasks[0].processors == (0, 1)
        assert schedule.tasks[1].processors == (2, 3)
        assert schedule.tasks[2].processors == (4, 5)

    def test_forward_reference_rejected(self):
        statements = [
            JoinStatement(0, "pipelining", "left", Operand.pipe(1),
                          Operand.scan("C"), (0,)),
            JoinStatement(1, "pipelining", "left", Operand.scan("A"),
                          Operand.scan("B"), (1,)),
        ]
        with pytest.raises(ValueError, match="before it is defined"):
            XRAPlan("X", 2, statements).tree()

    def test_multiple_roots_rejected(self):
        statements = [
            JoinStatement(0, "simple", "left", Operand.scan("A"),
                          Operand.scan("B"), (0,)),
            JoinStatement(1, "simple", "left", Operand.scan("C"),
                          Operand.scan("D"), (1,)),
        ]
        with pytest.raises(ValueError, match="result statements"):
            XRAPlan("X", 2, statements).tree()

    def test_dense_numbering_required(self):
        with pytest.raises(ValueError, match="densely numbered"):
            XRAPlan("X", 2, [
                JoinStatement(1, "simple", "left", Operand.scan("A"),
                              Operand.scan("B"), (0,)),
            ])


class TestGenerator:
    def test_generate_plan_matches_strategy(self):
        plan = generate_plan(
            make_shape("wide_bushy", NAMES), CATALOG, "SE", 12
        )
        assert plan.strategy == "SE"
        assert len(plan.statements) == 7

    def test_generate_accepts_strategy_instance(self):
        from repro.core.strategies import FullParallel

        plan = generate_plan(
            make_shape("left_linear", NAMES), CATALOG, FullParallel(), 12
        )
        assert plan.strategy == "FP"
