"""XRA operand and statement validation."""

import pytest

from repro.xra import JoinStatement, Operand


class TestOperand:
    def test_scan(self):
        op = Operand.scan("R0")
        assert op.mode == "base"
        assert str(op) == "scan(R0)"

    def test_store(self):
        op = Operand.store(3)
        assert op.mode == "materialized"
        assert str(op) == "store(%3)"

    def test_pipe(self):
        op = Operand.pipe(1)
        assert op.mode == "pipelined"
        assert str(op) == "pipe(%1)"

    def test_from_mode_roundtrip(self):
        assert Operand.from_mode("base", "R1") == Operand.scan("R1")
        assert Operand.from_mode("materialized", 2) == Operand.store(2)
        assert Operand.from_mode("pipelined", 0) == Operand.pipe(0)

    def test_scan_requires_relation(self):
        with pytest.raises(ValueError):
            Operand("scan", statement=1)

    def test_store_requires_statement(self):
        with pytest.raises(ValueError):
            Operand("store", relation="R0")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Operand("stream", relation="R0")


class TestJoinStatement:
    def make(self, **kwargs):
        defaults = dict(
            index=0,
            algorithm="simple",
            build_side="left",
            left=Operand.scan("A"),
            right=Operand.scan("B"),
            processors=(0, 1),
        )
        defaults.update(kwargs)
        return JoinStatement(**defaults)

    def test_valid(self):
        statement = self.make()
        assert statement.parallelism == 2

    def test_bad_algorithm(self):
        with pytest.raises(ValueError):
            self.make(algorithm="nested-loop")

    def test_bad_build_side(self):
        with pytest.raises(ValueError):
            self.make(build_side="top")

    def test_empty_processors(self):
        with pytest.raises(ValueError):
            self.make(processors=())
