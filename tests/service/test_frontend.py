"""The JSONL query service."""

import io
import json

import pytest

from repro.api import run
from repro.service import QueryService, serve

SERVICE = QueryService()


class TestQueryOp:
    def test_matches_the_facade(self):
        response = SERVICE.handle({
            "op": "query", "shape": "left_linear", "strategy": "SP",
            "processors": 10, "cardinality": 500,
        })
        single = run("left_linear", "SP", 10, "sim", cardinality=500)
        assert response["ok"]
        assert response["response_time"] == single.response_time
        assert response["events"] == single.events
        assert response["strategy"] == "SP"

    def test_ideal_backend_allowed(self):
        response = SERVICE.handle({
            "op": "query", "backend": "ideal", "processors": 10,
            "cardinality": 500,
        })
        assert response["ok"]

    @pytest.mark.parametrize("backend", ["local", "threaded", "warp"])
    def test_real_data_backends_refused(self, backend):
        response = SERVICE.handle({"op": "query", "backend": backend})
        assert not response["ok"]
        assert "backend" in response["error"]

    def test_unknown_shape(self):
        response = SERVICE.handle({"op": "query", "shape": "spiral"})
        assert not response["ok"]
        assert "spiral" in response["error"]

    def test_bad_parameter_becomes_an_error_dict(self):
        response = SERVICE.handle({"op": "query", "strategy": "XX"})
        assert not response["ok"]


class TestWorkloadOp:
    REQUEST = {
        "op": "workload", "shape": "wide_bushy", "cardinality": 200,
        "relations": 4, "strategy": "SE", "machine_size": 8,
        "rate": 0.05, "duration": 60, "seed": 1,
    }

    def test_summarizes_the_run(self):
        response = SERVICE.handle(dict(self.REQUEST))
        assert response["ok"]
        assert response["policy"] == "exclusive"
        assert response["completed"] == response["submitted"]
        assert response["latency"]["p95"] >= response["latency"]["p50"]
        assert "rows" not in response

    def test_rows_on_request(self):
        response = SERVICE.handle(dict(self.REQUEST, rows=True))
        assert len(response["rows"]) == response["submitted"]

    def test_deterministic(self):
        assert SERVICE.handle(dict(self.REQUEST)) == SERVICE.handle(
            dict(self.REQUEST)
        )

    def test_unknown_parameter_refused(self):
        response = SERVICE.handle(dict(self.REQUEST, verbosity=3))
        assert not response["ok"]
        assert "verbosity" in response["error"]


class TestDispatch:
    def test_unknown_op(self):
        response = SERVICE.handle({"op": "drop_tables"})
        assert not response["ok"]
        assert "drop_tables" in response["error"]

    def test_non_object_request(self):
        assert not SERVICE.handle([1, 2, 3])["ok"]


class TestServe:
    def pump(self, *lines):
        out = io.StringIO()
        served = serve(io.StringIO("\n".join(lines) + "\n"), out)
        return served, [json.loads(l) for l in out.getvalue().splitlines()]

    def test_one_response_per_request(self):
        served, responses = self.pump(
            json.dumps({"op": "query", "processors": 10,
                        "cardinality": 500}),
            "",
            json.dumps({"op": "nope"}),
        )
        assert served == 2  # the blank line is skipped
        assert responses[0]["ok"]
        assert not responses[1]["ok"]

    def test_bad_json_does_not_kill_the_stream(self):
        served, responses = self.pump(
            "{not json",
            json.dumps({"op": "query", "processors": 10,
                        "cardinality": 500}),
        )
        assert served == 2
        assert not responses[0]["ok"]
        assert "bad JSON" in responses[0]["error"]
        assert responses[1]["ok"]

    def test_responses_are_sorted_key_json(self):
        _, _ = self.pump(json.dumps({"op": "nope"}))
        out = io.StringIO()
        serve(io.StringIO('{"op": "nope"}\n'), out)
        line = out.getvalue().strip()
        assert line == json.dumps(json.loads(line), sort_keys=True)


class TestLifecycle:
    """Deadlines, shedding, and cancellation through the service."""

    WORKLOAD = dict(TestWorkloadOp.REQUEST)

    def test_query_typo_is_refused_with_accepted_keys(self):
        """The satellite case: a misspelt "deadine" must not silently
        run an unbounded query."""
        response = SERVICE.handle({
            "op": "query", "shape": "left_linear", "processors": 10,
            "cardinality": 500, "deadine": 5.0,
        })
        assert not response["ok"]
        assert "deadine" in response["error"]
        assert "deadline" in response["error"]  # listed as accepted

    def test_query_deadline_abort_is_a_structured_response(self):
        response = SERVICE.handle({
            "op": "query", "shape": "left_linear", "strategy": "SP",
            "processors": 10, "cardinality": 500, "deadline": 0.001,
        })
        assert response["ok"]
        assert response["aborted"] is True
        assert response["aborted_at"] == 0.001
        assert response["reason"] == "deadline"

    def test_query_generous_deadline_matches_the_facade(self):
        plain = SERVICE.handle({
            "op": "query", "shape": "left_linear", "processors": 10,
            "cardinality": 500,
        })
        bounded = SERVICE.handle({
            "op": "query", "shape": "left_linear", "processors": 10,
            "cardinality": 500, "deadline": 1e9,
        })
        assert bounded["response_time"] == plain["response_time"]
        assert "aborted" not in bounded

    def test_workload_deadline_and_shed_report_lifecycle(self):
        response = SERVICE.handle(dict(
            self.WORKLOAD, deadline=0.5, shed="deadline_aware",
        ))
        assert response["ok"]
        assert "lifecycle" in response
        lifecycle = response["lifecycle"]
        assert lifecycle["shed"] + lifecycle["deadline_missed"] > 0

    def test_workload_without_lifecycle_activity_omits_the_key(self):
        response = SERVICE.handle(dict(self.WORKLOAD))
        assert response["ok"]
        assert "lifecycle" not in response

    def test_workload_cancellations(self):
        response = SERVICE.handle(dict(
            self.WORKLOAD, cancellations=[[0.01, 0]],
        ))
        assert response["ok"]
        assert response["lifecycle"]["cancelled"] == 1

    def test_workload_bad_cancellation_refused(self):
        response = SERVICE.handle(dict(self.WORKLOAD, cancellations=[[1.0]]))
        assert not response["ok"]
        assert "cancellation" in response["error"]

    def test_workload_deadline_range_accepted(self):
        response = SERVICE.handle(dict(self.WORKLOAD, deadline=[5.0, 50.0]))
        assert response["ok"]


class TestSchedulersAndTenants:
    """The scheduler/tenant keys of the workload op."""

    WORKLOAD = dict(TestWorkloadOp.REQUEST)

    def test_scheduler_reported_when_set(self):
        response = SERVICE.handle(dict(self.WORKLOAD, scheduler="wfq"))
        assert response["ok"]
        assert response["scheduler"] == "wfq"
        assert response["scheduling_decisions"] >= response["completed"]

    def test_scheduler_absent_by_default(self):
        response = SERVICE.handle(dict(self.WORKLOAD))
        assert response["ok"]
        assert "scheduler" not in response
        assert "scheduling_decisions" not in response
        assert "tenants" not in response

    def test_unknown_scheduler_is_an_error_dict(self):
        response = SERVICE.handle(dict(self.WORKLOAD, scheduler="lifo"))
        assert not response["ok"]
        assert "unknown scheduler" in response["error"]

    def test_tenants_summarized(self):
        response = SERVICE.handle(dict(
            self.WORKLOAD,
            scheduler="wfq",
            tenants=[
                {"name": "a", "rate": 0.2},
                {"name": "b", "rate": 0.2, "weight": 2.0},
            ],
        ))
        assert response["ok"]
        assert sorted(response["tenants"]) == ["a", "b"]
        cell = response["tenants"]["a"]
        assert {"submitted", "useful", "goodput", "latency"} <= set(cell)

    def test_lifecycle_carries_per_tenant_shed_counts(self):
        """Satellite: the lifecycle response names each tenant's shed
        and expired counts."""
        response = SERVICE.handle(dict(
            self.WORKLOAD,
            scheduler="fifo",
            rate=None,
            tenants=[
                {"name": "greedy", "rate": 4.0, "deadline": 2.0},
                {"name": "calm", "rate": 0.02, "deadline": 50.0},
            ],
        ))
        assert response["ok"]
        lifecycle = response["lifecycle"]
        assert sorted(lifecycle["tenants"]) == ["calm", "greedy"]
        greedy = lifecycle["tenants"]["greedy"]
        assert greedy["shed"] > 0
        assert greedy["expired"] > 0

    def test_bad_tenant_payload_is_an_error_dict(self):
        response = SERVICE.handle(dict(
            self.WORKLOAD, scheduler="wfq",
            tenants=[{"name": "a", "wieght": 2.0}],
        ))
        assert not response["ok"]
        assert "unknown tenant keys" in response["error"]


class TestClusterOp:
    REQUEST = {
        "op": "cluster", "shape": "wide_bushy", "cardinality": 500,
        "strategy": "FP", "machine_size": 12, "policy": "exclusive",
        "share": 12, "rate": 0.3, "duration": 30, "seed": 3, "shards": 2,
    }

    def test_summarizes_the_cluster_run(self):
        response = SERVICE.handle(dict(self.REQUEST))
        assert response["ok"]
        assert response["shards"] == 2
        assert response["placement"] == "hash"
        assert response["autoscale"] == "static"
        assert response["completed"] == response["submitted"]
        assert len(response["per_shard"]) == 2
        assert "rows" not in response

    def test_rows_on_request_carry_their_shard(self):
        response = SERVICE.handle(dict(self.REQUEST, rows=True))
        assert len(response["rows"]) == response["submitted"]
        assert all("shard" in row for row in response["rows"])

    def test_deterministic(self):
        assert SERVICE.handle(dict(self.REQUEST)) == SERVICE.handle(
            dict(self.REQUEST)
        )

    def test_trace_payload_replays(self):
        from repro.cluster import synthesize_trace

        trace = synthesize_trace(
            "wide_bushy", rate=0.5, duration=20.0, seed=5
        )
        request = dict(self.REQUEST, trace=trace.to_payload())
        for key in ("rate", "duration", "cardinality", "strategy"):
            del request[key]
        response = SERVICE.handle(request)
        assert response["ok"]
        assert response["submitted"] == len(trace)

    def test_bad_trace_is_an_error_dict(self):
        response = SERVICE.handle(
            dict(self.REQUEST, trace={"version": 99, "queries": []})
        )
        assert not response["ok"]
        assert "bad trace" in response["error"]

    def test_unknown_parameter_refused(self):
        """Satellite: strict key validation on the cluster op — a typo
        is an error naming the key, never a silent ignore."""
        response = SERVICE.handle(dict(self.REQUEST, shardss=4))
        assert not response["ok"]
        assert "shardss" in response["error"]

    def test_malformed_faults_payload_is_an_error_dict(self):
        response = SERVICE.handle(
            dict(self.REQUEST, faults={"crashes": []})
        )
        assert not response["ok"]
        assert "bad fault schedule" in response["error"]

    def test_cancellations_still_refused(self):
        """``cancellations`` stays a single-engine-only knob."""
        response = SERVICE.handle(
            dict(self.REQUEST, cancellations=[[1.0, 0]])
        )
        assert not response["ok"]
        assert "cancellations" in response["error"]


class TestClusterResilience:
    """The resilience surface of the cluster op: fault payloads in,
    per-shard abort/retry/hedge telemetry out."""

    def shard_kill_payload(self):
        from repro.faults import CrashFault, FaultSchedule

        return FaultSchedule(
            crashes=(CrashFault(0, at=10.0, repair_at=25.0),), seed=0
        ).to_payload()

    def request(self, **extra):
        base = dict(
            TestClusterOp.REQUEST, machine_size=12, share=12,
            strategy="FP", rate=0.2,
        )
        base.update(extra)
        return base

    def test_shard_faults_payload_runs_the_coordinated_cluster(self):
        service = QueryService()
        response = service.handle(self.request(
            shard_faults=self.shard_kill_payload(), retry_budget=2,
        ))
        assert response["ok"]
        resilience = response["resilience"]
        assert resilience["shard_crashes"] == 1
        assert resilience["shard_repairs"] == 1
        per_shard = resilience["per_shard"]
        assert len(per_shard) == 2
        assert all(
            {"shard", "alive", "dispatches", "hedges", "aborts", "retries"}
            <= set(entry) for entry in per_shard
        )
        stats = service.handle({"op": "stats"})
        engine = stats["engine"]
        assert engine["resilience"] == resilience
        assert "failed" in engine["lifecycle"]

    def test_engine_faults_accepted_in_all_three_forms(self):
        payload = self.shard_kill_payload()
        for faults in (
            payload,
            [payload, None],
            {"0": payload, "1": None},
        ):
            response = SERVICE.handle(self.request(faults=faults))
            assert response["ok"], response
            assert "resilience" not in response

    def test_hedge_retry_budget_and_failover_accepted(self):
        response = SERVICE.handle(self.request(
            retry_budget=1, hedge=95.0, breaker=True, throttle=False,
            failover=True,
        ))
        assert response["ok"]
        assert response["failed"] == 0

    def test_deterministic_resilient_response(self):
        request = self.request(
            shard_faults=self.shard_kill_payload(), retry_budget=2,
        )
        assert SERVICE.handle(dict(request)) == SERVICE.handle(dict(request))

    def test_bad_shard_faults_payload_is_an_error_dict(self):
        response = SERVICE.handle(self.request(shard_faults={"nope": 1}))
        assert not response["ok"]
        assert "bad fault schedule" in response["error"]

    def test_faults_of_wrong_shape_is_an_error_dict(self):
        response = SERVICE.handle(self.request(faults="everything"))
        assert not response["ok"]
        assert "faults" in response["error"]


class TestStatsOp:
    def test_bare_stats_request(self):
        """Satellite: ``{"stats": true}`` with no op is the stats op."""
        service = QueryService()
        response = service.handle({"stats": True})
        assert response["ok"]
        assert response["op"] == "stats"
        assert response["served"] == {}
        assert response["engine"] is None

    def test_served_counters_track_ok_responses(self):
        service = QueryService()
        service.handle({"op": "query", "processors": 10, "cardinality": 500})
        service.handle({"op": "query", "processors": 10, "cardinality": 500})
        service.handle({"op": "query", "backend": "warp"})  # refused
        response = service.handle({"stats": True})
        assert response["served"] == {"query": 2}

    def test_engine_snapshot_follows_the_last_workload(self):
        service = QueryService()
        service.handle({
            "op": "workload", "shape": "wide_bushy", "cardinality": 200,
            "relations": 4, "strategy": "SE", "machine_size": 8,
            "rate": 0.05, "duration": 60, "seed": 1,
        })
        response = service.handle({"stats": True})
        engine = response["engine"]
        assert engine["op"] == "workload"
        assert engine["machine_size"] == 8
        assert engine["lifecycle"]["submitted"] > 0
        assert "peak_queued" in engine

    def test_engine_snapshot_follows_the_last_cluster(self):
        service = QueryService()
        service.handle(dict(TestClusterOp.REQUEST))
        response = service.handle({"stats": True})
        engine = response["engine"]
        assert engine["op"] == "cluster"
        assert len(engine["shards"]) == 2

    def test_unknown_stats_key_refused(self):
        response = SERVICE.handle({"op": "stats", "verbose": True})
        assert not response["ok"]
        assert "verbose" in response["error"]
