"""Edge cases and failure injection across the stack.

Degenerate data (empty relations, single tuples), degenerate machines
(one batch, zero-size constants), pathological schedules, and error
surfaces that must stay informative.
"""

import pytest

from repro.core import (
    Catalog,
    Join,
    Leaf,
    get_strategy,
    make_shape,
    paper_relation_names,
)
from repro.engine.local import execute_schedule, reference_result
from repro.engine.simulate import simulate_strategy
from repro.relational import make_wisconsin
from repro.sim import MachineConfig
from repro.sim.run import simulate


class TestEmptyData:
    def test_zero_cardinality_catalog_simulates(self, fast_config):
        names = paper_relation_names(4)
        catalog = Catalog.regular(names, 0)
        tree = make_shape("wide_bushy", names)
        for strategy in ("SP", "SE", "RD", "FP"):
            result = simulate_strategy(tree, catalog, strategy, 6, config=fast_config)
            assert result.result_tuples == 0.0
            assert result.response_time >= 0.0

    def test_empty_relations_execute(self):
        names = paper_relation_names(3)
        relations = {name: make_wisconsin(0) for name in names}
        catalog = Catalog.regular(names, 0)
        tree = make_shape("left_linear", names)
        schedule = get_strategy("SP").schedule(tree, catalog, 2)
        result = execute_schedule(schedule, relations)
        assert len(result.relation) == 0

    def test_one_empty_operand(self):
        names = paper_relation_names(3)
        relations = {
            "R0": make_wisconsin(50, seed=1),
            "R1": make_wisconsin(0),
            "R2": make_wisconsin(50, seed=2),
        }
        catalog = Catalog({"R0": 50, "R1": 0, "R2": 50})
        tree = make_shape("left_linear", names)
        schedule = get_strategy("FP").schedule(tree, catalog, 4)
        result = execute_schedule(schedule, relations)
        assert len(result.relation) == 0
        assert result.relation.same_bag(reference_result(tree, relations))

    def test_single_tuple_relations(self, fast_config):
        names = paper_relation_names(4)
        catalog = Catalog.regular(names, 1)
        tree = make_shape("right_bushy", names)
        result = simulate_strategy(tree, catalog, "FP", 4, config=fast_config)
        assert result.result_tuples == pytest.approx(1.0)


class TestDegenerateMachines:
    def test_single_batch(self):
        names = paper_relation_names(4)
        catalog = Catalog.regular(names, 100)
        config = MachineConfig(
            tuple_unit=0.001, process_startup=0.0, handshake=0.0,
            network_latency=0.0, batches=1,
        )
        tree = make_shape("wide_bushy", names)
        result = simulate_strategy(tree, catalog, "FP", 4, config=config)
        assert result.result_tuples == pytest.approx(100.0, rel=1e-6)

    def test_zero_tuple_unit(self):
        """Pure-overhead machine: response driven by startup alone."""
        names = paper_relation_names(4)
        catalog = Catalog.regular(names, 100)
        config = MachineConfig(
            tuple_unit=0.0, process_startup=1.0, handshake=0.0,
            network_latency=0.0, batches=4,
        )
        tree = make_shape("left_linear", names)
        result = simulate_strategy(tree, catalog, "SP", 2, config=config)
        # 3 joins x 2 processors = 6 processes, serial startup.
        assert result.response_time == pytest.approx(6.0, abs=0.01)

    def test_enormous_latency_still_terminates(self, fast_config):
        names = paper_relation_names(4)
        catalog = Catalog.regular(names, 100)
        config = fast_config.scaled(network_latency=100.0)
        tree = make_shape("right_linear", names)
        result = simulate_strategy(tree, catalog, "FP", 4, config=config)
        assert result.result_tuples == pytest.approx(100.0, rel=1e-6)

    def test_single_processor_everything(self, fast_config):
        names = paper_relation_names(3)
        catalog = Catalog.regular(names, 50)
        tree = make_shape("left_linear", names)
        for strategy in ("SP", "SE", "RD"):
            result = simulate_strategy(tree, catalog, strategy, 1, config=fast_config)
            assert result.result_tuples == pytest.approx(50.0, rel=1e-6)


class TestErrorSurfaces:
    def test_strategy_on_missing_catalog_entry(self):
        tree = Join(Leaf("A"), Leaf("Zebra"))
        catalog = Catalog.regular(["A"], 10)
        with pytest.raises(KeyError, match="Zebra"):
            get_strategy("SP").schedule(tree, catalog, 2)

    def test_fp_rejects_undersized_machine_with_clear_message(self):
        names = paper_relation_names(10)
        catalog = Catalog.regular(names, 10)
        tree = make_shape("left_linear", names)
        with pytest.raises(ValueError, match="9 operations"):
            get_strategy("FP").schedule(tree, catalog, 5)

    def test_negative_skew_rejected(self, fast_config):
        names = paper_relation_names(3)
        catalog = Catalog.regular(names, 10)
        tree = make_shape("left_linear", names)
        schedule = get_strategy("SP").schedule(tree, catalog, 2)
        with pytest.raises(ValueError):
            simulate(schedule, catalog, fast_config, skew_theta=-1.0)


class TestTwoRelationQueries:
    """The smallest multi-join query: one join."""

    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    def test_all_strategies_identical_plan_shape(self, strategy, fast_config):
        catalog = Catalog.regular(["A", "B"], 500)
        tree = Join(Leaf("A"), Leaf("B"))
        schedule = get_strategy(strategy).schedule(tree, catalog, 8)
        assert schedule.tasks[0].processors == tuple(range(8))
        result = simulate(schedule, catalog, fast_config)
        assert result.result_tuples == pytest.approx(500.0, rel=1e-6)

    def test_real_execution(self):
        left = make_wisconsin(80, seed=1)
        right = make_wisconsin(80, seed=2)
        catalog = Catalog.regular(["A", "B"], 80)
        tree = Join(Leaf("A"), Leaf("B"))
        schedule = get_strategy("FP").schedule(tree, catalog, 3)
        result = execute_schedule(schedule, {"A": left, "B": right})
        assert len(result.relation) == 80
