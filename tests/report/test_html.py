"""HTML report assembly."""

import xml.etree.ElementTree as ET

import pytest

from repro.bench import Experiment, run_sweep
from repro.core import example_tree
from repro.engine.ideal import ideal_simulation
from repro.report import (
    claims_html,
    figure14_html,
    overload_chart,
    overload_html,
    render_report,
    sweep_chart,
    utilization_gantt,
    workload_chart,
    workload_html,
)


@pytest.fixture(scope="module")
def sweeps(fast_config):
    sweep = run_sweep(Experiment("wide_bushy", 500, (10, 20)), config=fast_config)
    return {("wide_bushy", "5K"): sweep}


@pytest.fixture(scope="module")
def diagram_result():
    return ideal_simulation(example_tree(), "FP", 10)


class TestPieces:
    def test_sweep_chart_is_svg(self, sweeps):
        svg = sweep_chart(sweeps[("wide_bushy", "5K")])
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_gantt_is_svg(self, diagram_result):
        svg = utilization_gantt(diagram_result, "Figure 7")
        assert ET.fromstring(svg).tag.endswith("svg")
        assert "Figure 7" in svg

    def test_figure14_table(self, sweeps):
        html = figure14_html(sweeps)
        assert "<table>" in html
        assert "wide_bushy" in html
        assert "5.2" in html  # the paper value

    def test_claims_list(self, sweeps):
        html = claims_html(sweeps[("wide_bushy", "5K")])
        assert "<ul>" in html
        assert "✓" in html or "✗" in html


class TestDocument:
    def test_full_document(self, sweeps, diagram_result):
        html = render_report(sweeps, {"FP": diagram_result})
        assert html.startswith("<!DOCTYPE html>")
        assert "Figure 14" in html
        assert "Figures 9–13" in html
        assert "svg" in html
        assert html.rstrip().endswith("</html>")

    def test_document_without_diagrams(self, sweeps):
        html = render_report(sweeps)
        assert "Figures 3, 4, 6, 7" not in html
        assert "Figure 14" in html


@pytest.fixture(scope="module")
def load_points(fast_config):
    from repro.workload import (
        ExclusivePolicy,
        QueryMix,
        QuerySpec,
        WorkloadEngine,
        closed_loop_curve,
    )

    return closed_loop_curve(
        [1, 4, 8],
        QueryMix.single(QuerySpec("wide_bushy", 200, "SE", 4)),
        lambda: WorkloadEngine(8, ExclusivePolicy(), config=fast_config),
        queries_per_client=2,
        seed=0,
    )


class TestWorkloadSection:
    def test_chart_is_svg(self, load_points):
        svg = workload_chart(load_points, "Latency versus offered load")
        assert ET.fromstring(svg).tag.endswith("svg")
        assert "p95" in svg

    def test_section_summarizes_the_curve(self, load_points):
        html = workload_html(load_points, knee=4.0)
        assert "saturation" in html.lower()
        assert "<table>" in html
        assert "Saturation knee: <b>4</b>" in html
        assert "never saturated" in workload_html(load_points, knee=None)

    def test_document_with_workload_points(self, sweeps, load_points):
        html = render_report(sweeps, workload_points=load_points)
        assert "multi-query workload saturation" in html
        assert html.rstrip().endswith("</html>")

    def test_document_without_workload_points(self, sweeps):
        assert "workload" not in render_report(sweeps)


@pytest.fixture(scope="module")
def overload_points(fast_config):
    from repro.workload import overload_sweep

    return overload_sweep(
        strategies=("SE",),
        loads=(0.05, 0.2),
        sheds=(None, "deadline_aware"),
        deadline=30.0,
        duration=60.0,
        machine_size=8,
        seed=5,
        queue_limit=4,
        cardinality=200,
        config=fast_config,
    )


class TestOverloadSection:
    def test_chart_is_svg(self, overload_points):
        svg = overload_chart(overload_points, "Goodput versus offered load")
        assert ET.fromstring(svg).tag.endswith("svg")
        assert "SE/none" in svg
        assert "SE/deadline_aware" in svg

    def test_section_tabulates_the_grid(self, overload_points):
        html = overload_html(overload_points)
        assert "goodput under overload" in html
        assert "<table>" in html
        assert html.count("<tr>") == 1 + len(overload_points)
        assert "deadline_aware" in html

    def test_document_with_overload_points(self, sweeps, overload_points):
        html = render_report(sweeps, overload_points=overload_points)
        assert "goodput under overload" in html
        assert html.rstrip().endswith("</html>")

    def test_document_without_overload_points(self, sweeps):
        assert "overload" not in render_report(sweeps)
