"""SVG chart primitives: structural validity and value mapping."""

import xml.etree.ElementTree as ET

import pytest

from repro.report import GanttChart, LineChart, color_for

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestLineChart:
    def make(self):
        chart = LineChart("Response", x_label="processors", y_label="seconds")
        chart.add_series("SP", [(20, 10.0), (40, 8.0), (80, 12.0)])
        chart.add_series("FP", [(20, 14.0), (40, 9.0), (80, 5.0)])
        return chart

    def test_valid_xml(self):
        parse(self.make().to_svg())

    def test_one_polyline_per_series(self):
        root = parse(self.make().to_svg())
        polylines = root.findall(f".//{SVG_NS}polyline")
        assert len(polylines) == 2

    def test_point_markers(self):
        root = parse(self.make().to_svg())
        circles = root.findall(f".//{SVG_NS}circle")
        assert len(circles) == 6

    def test_legend_and_labels(self):
        text = self.make().to_svg()
        for needle in ("SP", "FP", "processors", "seconds", "Response"):
            assert needle in text

    def test_coordinates_inside_viewbox(self):
        chart = self.make()
        root = parse(chart.to_svg())
        for circle in root.findall(f".//{SVG_NS}circle"):
            assert 0 <= float(circle.get("cx")) <= chart.width
            assert 0 <= float(circle.get("cy")) <= chart.height

    def test_higher_value_is_higher_on_screen(self):
        chart = LineChart("t")
        chart.add_series("X", [(0, 1.0), (1, 10.0)])
        root = parse(chart.to_svg())
        c_low, c_high = root.findall(f".//{SVG_NS}circle")
        # SVG y grows downward: the larger value has the smaller cy.
        assert float(c_high.get("cy")) < float(c_low.get("cy"))

    def test_empty_series_rejected(self):
        chart = LineChart("t")
        with pytest.raises(ValueError):
            chart.add_series("X", [])
        with pytest.raises(ValueError):
            chart.to_svg()

    def test_title_escaped(self):
        chart = LineChart("a < b & c")
        chart.add_series("X", [(0, 1.0)])
        parse(chart.to_svg())  # would raise on unescaped '<' or '&'


class TestGanttChart:
    def make(self):
        chart = GanttChart("Utilization")
        chart.add_span(0, 0.0, 1.0, "J0")
        chart.add_span(1, 0.5, 2.0, "J1")
        chart.add_span(0, 1.0, 1.5, "J1")
        return chart

    def test_valid_xml(self):
        parse(self.make().to_svg())

    def test_one_rect_per_span(self):
        root = parse(self.make().to_svg())
        assert len(root.findall(f".//{SVG_NS}rect")) == 3

    def test_span_widths_proportional(self):
        root = parse(self.make().to_svg())
        rects = root.findall(f".//{SVG_NS}rect")
        widths = [float(r.get("width")) for r in rects]
        # J1's 1.5s span is 3x J0's 1.0-0.5... spans: 1.0, 1.5, 0.5.
        assert widths[1] == pytest.approx(widths[0] * 1.5, rel=0.02)
        assert widths[2] == pytest.approx(widths[0] * 0.5, rel=0.05)

    def test_invalid_span_rejected(self):
        with pytest.raises(ValueError):
            GanttChart("t").add_span(0, 2.0, 1.0, "J0")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GanttChart("t").to_svg()


class TestColors:
    def test_strategy_colors_stable(self):
        assert color_for("SP") == color_for("SP")
        assert color_for("SP") != color_for("FP")

    def test_fallback_cycles(self):
        assert color_for("other", 0) != color_for("other", 1)
