"""The coordinated resilient cluster: shard failover, retry budgets,
hedged requests, circuit breakers, throttling, and conservation."""

import pytest

from repro import api
from repro.cluster import (
    BreakerPolicy,
    HedgePolicy,
    ResilientClusterResult,
    ThrottlePolicy,
    build_ring,
    resolve_shard_faults,
    ring_lookup,
    ring_lookup_live,
    synthesize_trace,
)
from repro.cluster.chaos import check_invariants
from repro.faults import CrashFault, FaultSchedule, StallFault
from repro.sim import MachineConfig

FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)


def run_cluster(**overrides):
    """A small resilient run: any resilience knob routes api.run_cluster
    onto the coordinated single-clock path."""
    knobs = dict(
        arrivals="poisson", rate=0.4, duration=40.0, seed=3, shards=2,
        machine_size=12, policy="exclusive", share=12, strategy="FP",
        cardinality=500, placement="hash", config=FAST, retry_budget=2,
    )
    knobs.update(overrides)
    return api.run_cluster("wide_bushy", **knobs)


def kill_schedule(shard, at, repair_at=None):
    return FaultSchedule(
        crashes=(CrashFault(shard, at=at, repair_at=repair_at),), seed=0
    )


class TestFailover:
    def test_killed_shard_queries_complete_elsewhere(self):
        result = run_cluster(shard_faults=kill_schedule(0, at=10.0))
        assert isinstance(result, ResilientClusterResult)
        assert result.failed_count() == 0
        assert result.completed_count() == result.submitted_count()
        res = result.resilience
        assert res["shard_crashes"] == 1
        assert res["rerouted"] + res["retries"] > 0
        # The dead shard stops taking traffic.
        dead = res["per_shard"][0]
        assert dead["alive"] is False

    def test_no_failover_baseline_loses_the_dead_shard(self):
        killed = kill_schedule(0, at=10.0)
        resilient = run_cluster(shard_faults=killed)
        baseline = run_cluster(shard_faults=killed, failover=False)
        assert baseline.failed_count() > 0
        assert baseline.completed_count() < resilient.completed_count()
        errors = {
            r.error for r in baseline.records if r.failed and r.error
        }
        assert any("no failover" in e for e in errors)

    def test_repair_rejoins_the_ring(self):
        result = run_cluster(
            shard_faults=kill_schedule(0, at=5.0, repair_at=15.0),
            duration=60.0,
        )
        res = result.resilience
        assert res["shard_crashes"] == 1
        assert res["shard_repairs"] == 1
        assert all(s["alive"] for s in res["per_shard"])
        assert result.failed_count() == 0

    def test_all_shards_dead_exhausts_the_retry_budget(self):
        schedule = FaultSchedule(
            crashes=(CrashFault(0, at=5.0), CrashFault(1, at=5.0)), seed=0
        )
        result = run_cluster(shard_faults=schedule, duration=30.0)
        late = [r for r in result.records if r.arrival >= 5.0]
        assert late
        assert all(r.failed for r in late)
        assert all(
            "retry budget" in (r.error or "") for r in late
        )
        assert check_invariants(result) == []

    def test_retry_budget_zero_fails_immediately(self):
        result = run_cluster(
            shard_faults=kill_schedule(0, at=10.0),
            retry_budget=0,
        )
        assert result.resilience["retries"] == 0
        # Evacuated queries still reroute free of budget; only the
        # in-flight victims (which need a retry) can fail.
        assert check_invariants(result) == []


class TestHedging:
    STALL = FaultSchedule(
        stalls=(StallFault(1, start=0.0, end=500.0, factor=6.0),), seed=0
    )

    def test_hedges_fire_against_a_straggler_and_cut_latency(self):
        knobs = dict(
            shard_faults=self.STALL, shards=4, rate=0.45, duration=120.0,
            cardinality=1_000,
        )
        unhedged = run_cluster(**knobs)
        hedged = run_cluster(
            hedge=HedgePolicy(percentile=50.0, min_observations=6), **knobs
        )
        assert unhedged.resilience["hedges"] == 0
        assert hedged.resilience["hedges"] > 0
        assert hedged.resilience["hedge_wins"] > 0
        assert any(r.hedge_won for r in hedged.records)
        assert (
            hedged.latency_stats()["p99"] < unhedged.latency_stats()["p99"]
        )

    def test_hedge_off_is_identical_to_absent(self):
        assert (
            run_cluster(hedge=None).rows() == run_cluster().rows()
        )

    def test_bare_number_is_the_percentile(self):
        assert HedgePolicy.resolve(90).percentile == 90.0

    def test_unknown_policy_key_rejected(self):
        with pytest.raises(ValueError, match="percentil"):
            HedgePolicy.resolve({"percentil": 90})


class TestBreakerAndThrottle:
    def test_breaker_opens_on_a_crashing_shard(self):
        # Engine-level faults kill every processor of shard 0 early and
        # permanently: each attempt there dies, recovery gives up, and
        # the breaker must open after enough failures.
        engine_faults = FaultSchedule(
            crashes=tuple(CrashFault(p, at=1.0) for p in range(12)), seed=0
        )
        result = run_cluster(
            faults={0: engine_faults, 1: None},
            breaker=BreakerPolicy(window=8, threshold=0.5, min_samples=2),
            duration=60.0,
        )
        assert result.resilience["breaker_opens"] >= 1
        assert check_invariants(result) == []

    def test_throttle_sheds_over_budget_tenants(self):
        # A rated tenant arrives as Poisson at its contracted rate —
        # bursty, so a tight token bucket must shed the bursts.
        result = run_cluster(
            tenants=[{"name": "greedy", "rate": 0.3}],
            rate=None,
            duration=60.0,
            throttle=ThrottlePolicy(burst_seconds=1.0),
        )
        assert result.resilience["throttled"] > 0
        throttled = [r for r in result.records if r.shed == "throttled"]
        assert len(throttled) == result.resilience["throttled"]
        assert check_invariants(result) == []


class TestConservationAndDeterminism:
    def test_every_query_has_exactly_one_terminal_state(self):
        result = run_cluster(
            shard_faults=kill_schedule(0, at=8.0, repair_at=20.0),
            hedge=50.0, breaker=True, duration=60.0,
        )
        assert check_invariants(result) == []

    def test_identical_reruns(self):
        knobs = dict(shard_faults=kill_schedule(1, at=6.0), hedge=60.0)
        assert run_cluster(**knobs).rows() == run_cluster(**knobs).rows()

    def test_workers_are_ignored_rows_identical(self):
        knobs = dict(shard_faults=kill_schedule(1, at=6.0))
        serial = run_cluster(workers=1, **knobs)
        pooled = run_cluster(workers=4, **knobs)
        assert serial.rows() == pooled.rows()

    def test_summary_reports_the_resilience_line(self):
        result = run_cluster(shard_faults=kill_schedule(0, at=10.0))
        assert "resilience:" in result.summary()
        assert "shard crashes" in result.summary()


class TestTraceReplayUnderFaults:
    def test_faulted_replay_is_deterministic(self):
        from repro.workload import QueryMix, QuerySpec

        trace = synthesize_trace(
            QueryMix.single(QuerySpec("wide_bushy", 500, "FP")),
            rate=0.4, duration=40.0, seed=9,
        )
        knobs = dict(
            trace=trace, shards=2, machine_size=12, policy="exclusive",
            share=12, config=FAST, seed=3, retry_budget=2,
            shard_faults=kill_schedule(0, at=10.0),
        )
        first = api.run_cluster("wide_bushy", **knobs)
        second = api.run_cluster("wide_bushy", **knobs)
        assert first.submitted_count() == len(trace)
        assert first.rows() == second.rows()
        assert first.resilience == second.resilience


class TestResilientDispatch:
    def test_plain_run_cluster_stays_on_the_prerouted_path(self):
        result = api.run_cluster(
            "wide_bushy", shards=2, arrivals="poisson", rate=0.2,
            duration=20.0, seed=3, machine_size=12, policy="exclusive",
            share=12, cardinality=500, config=FAST,
        )
        assert not isinstance(result, ResilientClusterResult)

    def test_any_resilience_knob_selects_the_coordinated_path(self):
        for knob in (
            dict(retry_budget=1),
            dict(hedge=95.0),
            dict(breaker=True),
            dict(throttle=True),
            dict(failover=True),
            dict(shard_faults=kill_schedule(0, at=5.0)),
        ):
            assert isinstance(run_cluster(**knob), ResilientClusterResult)

    def test_closed_loop_without_trace_refused(self):
        with pytest.raises(ValueError, match="open-loop"):
            api.run_cluster(
                "wide_bushy", shards=2, arrivals="closed", clients=2,
                retry_budget=1, machine_size=12, policy="exclusive",
                share=12, cardinality=500, config=FAST,
            )

    def test_autoscale_refused(self):
        with pytest.raises(ValueError, match="autoscale"):
            run_cluster(autoscale="reactive", scale_max=24)


class TestResolveShardFaults:
    SCHEDULE = kill_schedule(0, at=5.0)

    def test_none_is_fault_free_everywhere(self):
        assert resolve_shard_faults(None, 3) == [None, None, None]

    def test_single_schedule_broadcasts(self):
        assert resolve_shard_faults(self.SCHEDULE, 2) == [
            self.SCHEDULE, self.SCHEDULE,
        ]

    def test_dict_keyed_by_shard(self):
        resolved = resolve_shard_faults({1: self.SCHEDULE}, 3)
        assert resolved == [None, self.SCHEDULE, None]

    def test_dict_with_out_of_range_shard_rejected(self):
        with pytest.raises(ValueError, match="shard"):
            resolve_shard_faults({5: self.SCHEDULE}, 2)

    def test_list_must_match_shard_count(self):
        with pytest.raises(ValueError, match="2"):
            resolve_shard_faults([self.SCHEDULE], 2)

    def test_wrong_type_rejected(self):
        with pytest.raises((TypeError, ValueError)):
            resolve_shard_faults("crash everything", 2)


class TestRingLookupLive:
    KEYS = [f"tenant-{i}" for i in range(400)]

    def test_all_alive_matches_plain_lookup(self):
        ring = build_ring(4)
        for key in self.KEYS:
            assert ring_lookup_live(ring, key, {0, 1, 2, 3}) == ring_lookup(
                ring, key
            )

    def test_one_death_moves_about_one_nth_of_the_keyspace(self):
        shards = 4
        ring = build_ring(shards)
        before = {key: ring_lookup(ring, key) for key in self.KEYS}
        alive = {0, 1, 3}
        moved = sum(
            1
            for key in self.KEYS
            if ring_lookup_live(ring, key, alive) != before[key]
        )
        victims = sum(1 for owner in before.values() if owner == 2)
        # Exactly the dead shard's keys move — nobody else's.
        assert moved == victims
        assert moved <= 2 * len(self.KEYS) / shards

    def test_rejoin_restores_the_original_assignment(self):
        ring = build_ring(4)
        before = {key: ring_lookup(ring, key) for key in self.KEYS}
        after = {
            key: ring_lookup_live(ring, key, {0, 1, 2, 3})
            for key in self.KEYS
        }
        assert after == before

    def test_no_live_shard_is_none(self):
        ring = build_ring(3)
        assert ring_lookup_live(ring, "anyone", set()) is None
