"""Elastic capacity: bounds, determinism, event telemetry, and the
round-robin rejection."""

import pytest

from repro.cluster import (
    ElasticEngine,
    PredictiveAutoscaler,
    ReactiveAutoscaler,
    make_autoscaler,
)
from repro.workload import ExclusivePolicy, QueryMix, QuerySpec
from repro.workload.arrivals import poisson_arrivals
from repro.workload.mix import sample_specs


def burst_arrivals(rate=1.0, duration=30.0, seed=3):
    times = poisson_arrivals(rate, duration, seed)
    mix = QueryMix.single(QuerySpec("wide_bushy", 1_000, "FP"))
    return list(zip(times, sample_specs(mix, len(times), seed)))


def elastic(autoscaler, fast_config, **overrides):
    options = dict(
        autoscaler=autoscaler,
        scale_max=30,
        scale_cooldown=2.0,
        config=fast_config,
    )
    options.update(overrides)
    return ElasticEngine(10, ExclusivePolicy(10), **options)


class TestMakeAutoscaler:
    def test_static_and_none_mean_no_autoscaler(self):
        assert make_autoscaler(None) is None
        assert make_autoscaler("static") is None

    def test_names_resolve(self):
        assert isinstance(make_autoscaler("reactive"), ReactiveAutoscaler)
        assert isinstance(make_autoscaler("predictive"), PredictiveAutoscaler)

    def test_instance_passes_through(self):
        scaler = ReactiveAutoscaler(step=5)
        assert make_autoscaler(scaler) is scaler

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="oracle"):
            make_autoscaler("oracle")


class TestConstruction:
    def test_round_robin_policy_rejected(self, fast_config):
        """Round-robin time-shares the whole pool without claiming
        processors, so a capacity change would be a silent no-op — the
        engine must refuse instead of quietly not autoscaling."""
        from repro.workload import RoundRobinPolicy

        with pytest.raises(ValueError, match="round_robin"):
            ElasticEngine(
                10,
                RoundRobinPolicy(10),
                autoscaler=ReactiveAutoscaler(),
                scale_max=30,
                config=fast_config,
            )

    def test_scale_max_below_base_rejected(self, fast_config):
        with pytest.raises(ValueError, match="scale_max"):
            elastic(ReactiveAutoscaler(), fast_config, scale_max=5)

    def test_bad_scale_min_rejected(self, fast_config):
        with pytest.raises(ValueError, match="scale_min"):
            elastic(ReactiveAutoscaler(), fast_config, scale_min=20)

    def test_surplus_starts_drained(self, fast_config):
        engine = elastic(ReactiveAutoscaler(), fast_config)
        assert engine.capacity == 10
        assert len(engine.machine.free_ids()) == 10


@pytest.mark.parametrize("scaler", ["reactive", "predictive"])
class TestElasticRun:
    def test_scales_up_under_burst_and_back_down(self, scaler, fast_config):
        engine = elastic(make_autoscaler(scaler), fast_config)
        result = engine.run_open(burst_arrivals())
        assert len(result.completed()) == len(result.records)
        assert engine.scale_ups() > 0
        assert engine.scale_downs() > 0
        for event in engine.scale_events:
            assert engine.scale_min <= event.capacity_to <= engine.scale_max

    def test_cooldown_separates_scale_events(self, scaler, fast_config):
        engine = elastic(make_autoscaler(scaler), fast_config)
        engine.run_open(burst_arrivals())
        times = [event.time for event in engine.scale_events]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap >= engine.scale_cooldown - 1e-9 for gap in gaps)

    def test_rows_are_deterministic(self, scaler, fast_config):
        first = elastic(make_autoscaler(scaler), fast_config)
        second = elastic(make_autoscaler(scaler), fast_config)
        assert (
            first.run_open(burst_arrivals()).rows()
            == second.run_open(burst_arrivals()).rows()
        )

    def test_no_query_aborted_by_scale_down(self, scaler, fast_config):
        engine = elastic(make_autoscaler(scaler), fast_config)
        result = engine.run_open(burst_arrivals())
        assert all(row["failed"] is False for row in result.rows())
