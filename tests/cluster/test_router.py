"""Cluster routing: the 1-shard golden identity, worker-count replay
invariance, and result aggregation."""

import importlib.util
import pathlib

import pytest

from repro import api
from repro.cluster import (
    SHARD_SEED_STRIDE,
    Trace,
    shard_seed,
    split_clients,
    synthesize_trace,
)

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"


@pytest.fixture(scope="module")
def generators():
    """The golden fixture-generator module, loaded from its file."""
    spec = importlib.util.spec_from_file_location(
        "golden_fixture_generators", GOLDEN_DIR / "generate_fixtures.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def fixture_bytes(name: str) -> bytes:
    data = (GOLDEN_DIR / f"{name}.jsonl").read_bytes()
    assert data
    return data


class TestSingleShardGoldenIdentity:
    """A 1-shard static cluster IS run_workload: same knobs, same
    bytes, pinned against the pre-cluster golden fixtures."""

    def test_workload_open_identical(self, tmp_path):
        out = tmp_path / "cluster_open.jsonl"
        api.run_cluster(
            "wide_bushy",
            shards=1,
            arrivals="poisson",
            rate=0.4,
            duration=40.0,
            seed=7,
            machine_size=40,
            policy="exclusive",
            strategy="FP",
            cardinality=2_000,
        ).write_jsonl(out)
        assert out.read_bytes() == fixture_bytes("workload_open")

    def test_workload_closed_identical(self, tmp_path):
        out = tmp_path / "cluster_closed.jsonl"
        api.run_cluster(
            "paper",
            shards=1,
            arrivals="closed",
            clients=3,
            think_time=5.0,
            queries_per_client=4,
            duration=500.0,
            seed=11,
            machine_size=40,
            policy="round_robin",
            share=16,
            strategy="SE",
            cardinality=1_000,
            deadline=400.0,
        ).write_jsonl(out)
        assert out.read_bytes() == fixture_bytes("workload_closed")

    def test_single_shard_rows_carry_no_shard_key(self):
        result = api.run_cluster(
            "wide_bushy", shards=1, rate=0.3, duration=10.0, seed=2,
        )
        assert all("shard" not in row for row in result.rows())


class TestReplayInvariance:
    def test_workers_do_not_change_the_bytes(self, fast_config, tmp_path):
        trace = synthesize_trace(
            "wide_bushy", rate=0.8, duration=40.0, seed=9
        )
        outputs = []
        for workers in (1, 4):
            result = api.run_cluster(
                trace=trace, shards=4, placement="hash", seed=9,
                machine_size=12, policy="exclusive", share=12,
                config=fast_config, workers=workers,
            )
            out = tmp_path / f"replay_w{workers}.jsonl"
            result.write_jsonl(out)
            outputs.append(out.read_bytes())
        assert outputs[0] == outputs[1]

    def test_replaying_the_same_trace_twice_is_identical(self, fast_config):
        trace = synthesize_trace(
            "wide_bushy", rate=0.8, duration=30.0, seed=4
        )
        runs = [
            api.run_cluster(
                trace=trace, shards=2, seed=4, machine_size=12,
                policy="exclusive", share=12, config=fast_config,
            ).rows()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestAggregation:
    def run(self, fast_config, **overrides):
        options = dict(
            rate=0.5, duration=30.0, seed=3, shards=3,
            machine_size=12, policy="exclusive", share=12,
            config=fast_config,
        )
        options.update(overrides)
        return api.run_cluster("wide_bushy", **options)

    def test_rows_tag_their_shard(self, fast_config):
        result = self.run(fast_config)
        shards = {row["shard"] for row in result.rows()}
        assert shards <= {0, 1, 2} and len(shards) > 1

    def test_counts_sum_over_shards(self, fast_config):
        result = self.run(fast_config)
        assert result.submitted_count() == sum(
            len(report.rows) for report in result.shards
        )
        assert result.machine_size() == 36
        assert result.makespan == max(
            report.makespan for report in result.shards
        )

    def test_latency_stats_cover_all_shards(self, fast_config):
        result = self.run(fast_config)
        merged = result.latency_stats()
        assert merged["p50"] is not None
        per_shard = [
            result.latency_stats(shard=report.shard)["p50"]
            for report in result.shards
        ]
        assert min(p for p in per_shard if p is not None) <= merged["p50"]

    def test_trace_and_closed_are_exclusive(self, fast_config):
        trace = synthesize_trace("wide_bushy", rate=0.5, duration=10.0, seed=1)
        with pytest.raises(ValueError):
            api.run_cluster(
                trace=trace, arrivals="closed", clients=2,
                config=fast_config,
            )


class TestShardSeeds:
    def test_shard_zero_keeps_the_caller_seed(self):
        assert shard_seed(7, 0) == 7

    def test_other_shards_stride(self):
        assert shard_seed(7, 2) == 7 + 2 * SHARD_SEED_STRIDE
        assert len({shard_seed(7, s) for s in range(16)}) == 16


class TestSplitClients:
    def test_round_robin_split(self):
        assert split_clients(7, 3) == [3, 2, 2]
        assert sum(split_clients(10, 4)) == 10
        assert split_clients(2, 4) == [1, 1, 0, 0]


class TestTraceFromFile:
    def test_run_cluster_reads_a_trace_path(self, fast_config, tmp_path):
        trace = synthesize_trace("wide_bushy", rate=0.5, duration=20.0, seed=6)
        path = trace.write(tmp_path / "trace.json")
        from_path = api.run_cluster(
            trace=path, shards=2, seed=6, machine_size=12,
            policy="exclusive", share=12, config=fast_config,
        )
        in_memory = api.run_cluster(
            trace=trace, shards=2, seed=6, machine_size=12,
            policy="exclusive", share=12, config=fast_config,
        )
        assert from_path.rows() == in_memory.rows()


class TestTraceRecording:
    def test_from_workload_replays_identically(self, fast_config):
        """Recording a run's arrivals and replaying the trace through a
        1-shard static cluster reproduces the run."""
        knobs = dict(
            arrivals="poisson", rate=0.5, duration=30.0, seed=5,
            machine_size=12, policy="exclusive", share=12,
            strategy="FP", cardinality=1_000, config=fast_config,
        )
        original = api.run_workload("wide_bushy", **knobs)
        trace = Trace.from_workload(original, seed=5)
        replayed = api.run_cluster(
            trace=trace, shards=1, seed=5, machine_size=12,
            policy="exclusive", share=12, config=fast_config,
        )
        assert replayed.rows() == original.rows()
