"""The chaos-campaign harness: grid determinism, invariant checks,
and ddmin schedule shrinking."""

import json

import pytest

from repro.cluster.chaos import (
    ChaosPoint,
    build_points,
    campaign_engine_options,
    rows_digest,
    run_chaos_campaign,
    shrink_schedule,
)
from repro.faults import CrashFault, FaultSchedule, StallFault

#: One small shape, one faulty crash rate — a campaign cell that still
#: injects real shard crashes but finishes in well under a second.
SMALL = dict(
    cluster_shapes=((2, 8),),
    crash_rates=(0.1,),
    queries=12,
    arrival_rate=1.0,
    horizon=30.0,
    repair_time=10.0,
    seed=5,
)


def always_violates(result, point):
    """Module-level (picklable) forced violation for end-to-end
    shrink/fixture tests."""
    return [("forced", f"point {point.index} flagged by the test")]


class TestCampaign:
    def test_clean_campaign_holds_all_invariants(self):
        result = run_chaos_campaign(**SMALL)
        assert result.ok
        assert result.violations() == []
        assert len(result.reports) == 1
        report = result.reports[0]
        assert report["summary"]["submitted"] == SMALL["queries"]
        assert report["rows_digest"]

    def test_payload_identical_across_worker_counts(self):
        params = dict(SMALL, crash_rates=(0.0, 0.1))
        serial = run_chaos_campaign(workers=1, **params)
        pooled = run_chaos_campaign(workers=4, **params)
        assert json.dumps(
            serial.to_payload(), sort_keys=True
        ) == json.dumps(pooled.to_payload(), sort_keys=True)

    def test_grid_is_shape_major_with_strided_seeds(self):
        points = build_points(
            cluster_shapes=((2, 8), (4, 8)),
            crash_rates=(0.0, 0.1),
            queries=5,
            arrival_rate=1.0,
            horizon=10.0,
            repair_time=None,
            retry_budget=1,
            placement="hash",
            seed=3,
        )
        assert [p.index for p in points] == [0, 1, 2, 3]
        assert [p.shards for p in points] == [2, 2, 4, 4]
        seeds = {p.seed for p in points}
        assert len(seeds) == 4

    def test_point_streams_are_reproducible(self):
        point = ChaosPoint(
            index=0, shards=2, machine_size=8, crash_rate=0.2, queries=6,
            arrival_rate=1.0, horizon=20.0, repair_time=5.0,
            retry_budget=2, placement="hash", seed=9,
        )
        assert point.schedule() == point.schedule()
        assert point.arrivals() == point.arrivals()

    def test_rows_digest_is_order_and_content_sensitive(self):
        rows = [{"a": 1}, {"b": 2}]
        assert rows_digest(rows) == rows_digest([{"a": 1}, {"b": 2}])
        assert rows_digest(rows) != rows_digest(list(reversed(rows)))

    def test_unknown_engine_override_rejected(self):
        with pytest.raises(ValueError, match="polcy"):
            campaign_engine_options(8, polcy="guideline")


class TestForcedViolationEndToEnd:
    def test_violation_shrinks_and_emits_a_fixture(self, tmp_path):
        result = run_chaos_campaign(
            extra_invariants=always_violates,
            fixture_dir=tmp_path,
            **SMALL,
        )
        assert not result.ok
        assert result.violations()[0]["invariant"] == "forced"
        assert len(result.fixtures) == 1
        fixture = json.loads((tmp_path / result.fixtures[0].split("/")[-1])
                             .read_text())
        assert set(fixture) == {
            "point", "violations", "schedule", "shrunk_schedule",
        }
        # The forced violation holds under ANY schedule, so ddmin must
        # strip the fault schedule to a single event or fewer... the
        # 1-minimal floor for an unconditional predicate is one event.
        original = FaultSchedule.from_payload(fixture["schedule"])
        shrunk = FaultSchedule.from_payload(fixture["shrunk_schedule"])
        assert original.event_count >= 1
        assert shrunk.event_count == 1

    def test_shrink_false_skips_fixtures(self, tmp_path):
        result = run_chaos_campaign(
            extra_invariants=always_violates,
            fixture_dir=tmp_path,
            shrink=False,
            **SMALL,
        )
        assert not result.ok
        assert result.fixtures == []
        assert list(tmp_path.iterdir()) == []


class TestShrinkSchedule:
    def test_shrinks_to_the_single_triggering_event(self):
        target = CrashFault(0, at=5.0)
        noise = [CrashFault(1, at=float(t)) for t in (2, 8, 11)]
        schedule = FaultSchedule(
            crashes=tuple(noise[:2] + [target] + noise[2:]),
            stalls=(StallFault(1, start=1.0, end=4.0),),
            seed=7,
        )

        def predicate(candidate):
            return any(
                c.processor == 0 and c.at == 5.0 for c in candidate.crashes
            )

        shrunk = shrink_schedule(schedule, predicate)
        assert shrunk.crashes == (target,)
        assert shrunk.stalls == ()
        assert shrunk.seed == schedule.seed

    def test_conjunctive_predicate_keeps_both_events(self):
        a = CrashFault(0, at=2.0)
        b = StallFault(1, start=3.0, end=6.0)
        schedule = FaultSchedule(
            crashes=(a, CrashFault(1, at=9.0)),
            stalls=(b, StallFault(0, start=1.0, end=2.0)),
            seed=0,
        )

        def predicate(candidate):
            return a in candidate.crashes and b in candidate.stalls

        shrunk = shrink_schedule(schedule, predicate)
        assert shrunk.crashes == (a,)
        assert shrunk.stalls == (b,)
        assert shrunk.event_count == 2

    def test_predicate_must_hold_on_the_input(self):
        schedule = FaultSchedule(crashes=(CrashFault(0, at=1.0),), seed=0)
        with pytest.raises(ValueError, match="predicate"):
            shrink_schedule(schedule, lambda candidate: False)
