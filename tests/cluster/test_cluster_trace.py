"""Trace determinism: the frozen record/replay format round-trips
byte for byte, and synthesis is worker-count invariant."""

import json

import pytest

from repro.cluster import TRACE_VERSION, Trace, TraceQuery, synthesize_trace
from repro.workload import QuerySpec


def small_trace():
    return synthesize_trace(
        "wide_bushy", rate=0.5, duration=30.0, seed=13, workers=1
    )


class TestRoundTrip:
    def test_json_round_trip_is_byte_identical(self):
        trace = small_trace()
        text = trace.to_json()
        again = Trace.from_payload(json.loads(text))
        assert again.to_json() == text
        assert again == trace

    def test_file_round_trip_is_byte_identical(self, tmp_path):
        trace = small_trace()
        path = tmp_path / "trace.json"
        trace.write(path)
        first = path.read_bytes()
        Trace.read(path).write(tmp_path / "again.json")
        assert (tmp_path / "again.json").read_bytes() == first

    def test_canonical_json_is_stable(self):
        # Canonical form: sorted keys, no whitespace — so two equal
        # traces always serialize to the same bytes.
        trace = small_trace()
        payload = json.loads(trace.to_json())
        assert payload["version"] == TRACE_VERSION
        assert trace.to_json() == json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )

    def test_optional_fields_survive(self):
        query = TraceQuery(
            arrival=1.5, shape="wide_bushy", cardinality=500,
            strategy="SE", relations=6, deadline=30.0, tenant="acme",
        )
        trace = Trace(queries=(query,), seed=3)
        again = Trace.from_payload(json.loads(trace.to_json()))
        assert again.queries[0].deadline == 30.0
        assert again.queries[0].tenant == "acme"


class TestValidation:
    def test_unknown_payload_key_rejected(self):
        payload = json.loads(small_trace().to_json())
        payload["comment"] = "hand-edited"
        with pytest.raises(ValueError, match="comment"):
            Trace.from_payload(payload)

    def test_unknown_query_key_rejected(self):
        payload = json.loads(small_trace().to_json())
        payload["queries"][0]["priority"] = 9
        with pytest.raises(ValueError, match="priority"):
            Trace.from_payload(payload)

    def test_out_of_order_arrivals_rejected(self):
        queries = (
            TraceQuery(arrival=2.0, shape="wide_bushy"),
            TraceQuery(arrival=1.0, shape="wide_bushy"),
        )
        with pytest.raises(ValueError):
            Trace(queries=queries)

    def test_wrong_version_rejected(self):
        payload = json.loads(small_trace().to_json())
        payload["version"] = TRACE_VERSION + 1
        with pytest.raises(ValueError):
            Trace.from_payload(payload)


class TestSynthesis:
    def test_worker_count_invariant(self):
        serial = synthesize_trace(
            "wide_bushy", rate=1.0, duration=60.0, seed=21, workers=1
        )
        pooled = synthesize_trace(
            "wide_bushy", rate=1.0, duration=60.0, seed=21, workers=4
        )
        assert serial.to_json() == pooled.to_json()

    def test_seed_changes_the_trace(self):
        a = synthesize_trace("wide_bushy", rate=1.0, duration=30.0, seed=1)
        b = synthesize_trace("wide_bushy", rate=1.0, duration=30.0, seed=2)
        assert a.to_json() != b.to_json()

    def test_arrivals_sorted(self):
        trace = synthesize_trace(
            "wide_bushy", rate=2.0, duration=30.0, seed=5
        )
        times = [q.arrival for q in trace.queries]
        assert times == sorted(times)
        assert len(trace) > 10


class TestFromArrivals:
    def test_from_arrivals_sorts_and_freezes(self):
        spec = QuerySpec("wide_bushy", 500, "SE")
        trace = Trace.from_arrivals([(3.0, spec), (1.0, spec)], seed=4)
        assert [q.arrival for q in trace.queries] == [1.0, 3.0]
        assert trace.seed == 4
        assert trace.arrivals()[0][1].shape == "wide_bushy"
