"""Placement policies: consistent-hash stability, load-forecast tie
determinism, and positional round-robin."""

import pytest

from repro.cluster import (
    HashPlacement,
    LeastLoadedPlacement,
    RoundRobinPlacement,
    build_ring,
    make_placement,
    ring_assignments,
    ring_lookup,
)
from repro.workload import QuerySpec

SPEC = QuerySpec("wide_bushy", 1_000, "FP")


class TestHashRing:
    KEYS = [f"tenant-{i}" for i in range(600)]

    def test_adding_a_shard_moves_about_one_over_n(self):
        """The consistent-hashing contract: growing 8 -> 9 shards
        remaps roughly 1/9 of the keys, far from the (N-1)/N churn of
        naive modulo placement."""
        before = ring_assignments(self.KEYS, 8)
        after = ring_assignments(self.KEYS, 9)
        moved = sum(1 for key in self.KEYS if before[key] != after[key])
        fraction = moved / len(self.KEYS)
        assert 0 < fraction < 2 / 9

    def test_moved_keys_land_on_the_new_shard_only(self):
        before = ring_assignments(self.KEYS, 8)
        after = ring_assignments(self.KEYS, 9)
        for key in self.KEYS:
            if before[key] != after[key]:
                assert after[key] == 8

    def test_removing_a_shard_moves_only_its_keys(self):
        """Shrinking 9 -> 8 only re-homes keys that lived on the
        removed shard."""
        before = ring_assignments(self.KEYS, 9)
        after = ring_assignments(self.KEYS, 8)
        for key in self.KEYS:
            if before[key] != 8:
                assert after[key] == before[key]

    def test_lookup_is_deterministic(self):
        ring = build_ring(4)
        assert [ring_lookup(ring, k) for k in self.KEYS[:50]] == [
            ring_lookup(build_ring(4), k) for k in self.KEYS[:50]
        ]

    def test_every_shard_owns_keys(self):
        owners = set(ring_assignments(self.KEYS, 8).values())
        assert owners == set(range(8))

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            build_ring(0)


class TestHashPlacement:
    def test_tenant_keyed_affinity(self):
        placement = HashPlacement()
        placement.reset(4)
        tenant_spec = QuerySpec("wide_bushy", 1_000, "FP", tenant="acme")
        shards = {placement.place(i, 0.0, tenant_spec) for i in range(20)}
        assert len(shards) == 1  # same tenant, same shard, always

    def test_untenanted_queries_spread_by_index(self):
        placement = HashPlacement()
        placement.reset(4)
        shards = {placement.place(i, 0.0, SPEC) for i in range(100)}
        assert len(shards) > 1


class TestLeastLoaded:
    def test_ties_break_to_the_lowest_index(self):
        placement = LeastLoadedPlacement()
        placement.reset(3)
        # All forecasts are 0.0 at the first arrival: shard 0 wins.
        assert placement.place(0, 0.0, SPEC) == 0

    def test_sequence_is_deterministic(self):
        def sequence():
            placement = LeastLoadedPlacement()
            placement.reset(3, {"machine_size": 40})
            return [placement.place(i, 0.5 * i, SPEC) for i in range(30)]

        first = sequence()
        assert first == sequence()
        assert set(first) == {0, 1, 2}  # the forecast rotates the load

    def test_busy_shard_is_avoided(self):
        placement = LeastLoadedPlacement()
        placement.reset(2, {"machine_size": 40})
        first = placement.place(0, 0.0, SPEC)
        second = placement.place(1, 0.0, SPEC)
        assert first == 0
        assert second == 1


class TestRoundRobin:
    def test_positional_modulo(self):
        placement = RoundRobinPlacement()
        placement.reset(3)
        assert [placement.place(i, 0.0, SPEC) for i in range(7)] == [
            0, 1, 2, 0, 1, 2, 0,
        ]


class TestMakePlacement:
    def test_names_resolve(self):
        for name in ("hash", "least_loaded", "round_robin"):
            assert make_placement(name).name == name

    def test_instance_passes_through(self):
        placement = HashPlacement()
        assert make_placement(placement) is placement

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="zone_aware"):
            make_placement("zone_aware")
