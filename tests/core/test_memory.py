"""Memory accounting: the Section 4.2 floor and the RD-vs-FP claim."""

import pytest

from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.core.memory import (
    MemoryModel,
    PRISMA_NODE_BYTES,
    fits_in_memory,
    memory_report,
    minimum_processors,
    peak_memory_per_processor,
    task_memory,
)

NAMES = paper_relation_names(10)
CAT_5K = Catalog.regular(NAMES, 5000)
CAT_40K = Catalog.regular(NAMES, 40000)


class TestModel:
    def test_prisma_node_size(self):
        assert PRISMA_NODE_BYTES == 16 * 2**20

    def test_table_bytes_scale(self):
        model = MemoryModel(tuple_bytes=100, hash_overhead=2.0)
        assert model.table_bytes(10) == 2000
        assert model.stored_bytes(10) == 1000


class TestTaskMemory:
    def test_pipelining_joins_hold_two_tables(self):
        """Section 2.3.2: the pipelining algorithm's memory cost."""
        tree = make_shape("wide_bushy", NAMES)
        fp = get_strategy("FP").schedule(tree, CAT_5K, 40)
        for tm in task_memory(fp, CAT_5K):
            assert tm.hash_tables == 2

    def test_simple_joins_hold_one_table(self):
        tree = make_shape("wide_bushy", NAMES)
        for name in ("SP", "SE", "RD"):
            schedule = get_strategy(name).schedule(tree, CAT_5K, 40)
            for tm in task_memory(schedule, CAT_5K):
                assert tm.hash_tables == 1

    def test_rd_uses_less_memory_than_fp(self):
        """Section 5: 'RD uses less memory than FP because only one
        hash-table needs to be built.'"""
        tree = make_shape("right_bushy", NAMES)
        rd = get_strategy("RD").schedule(tree, CAT_40K, 40)
        fp = get_strategy("FP").schedule(tree, CAT_40K, 40)
        rd_peak = max(peak_memory_per_processor(rd, CAT_40K).values())
        fp_peak = max(peak_memory_per_processor(fp, CAT_40K).values())
        assert rd_peak < fp_peak

    def test_table_tuples_shrink_with_parallelism(self):
        tree = make_shape("left_linear", NAMES)
        small = task_memory(get_strategy("SP").schedule(tree, CAT_5K, 10), CAT_5K)
        large = task_memory(get_strategy("SP").schedule(tree, CAT_5K, 40), CAT_5K)
        assert large[0].table_tuples == pytest.approx(small[0].table_tuples / 4)


class TestFeasibility:
    def test_40k_fp_first_fits_at_30(self):
        """Section 4.2: 'The total size of the 40K query was too large
        to run on fewer than 30 processors.'"""
        tree = make_shape("wide_bushy", NAMES)
        assert minimum_processors(get_strategy("FP"), tree, CAT_40K) == 30

    def test_all_strategies_fit_the_paper_sweeps(self):
        for shape in ("left_linear", "wide_bushy", "right_bushy"):
            tree = make_shape(shape, NAMES)
            for name in ("SP", "SE", "RD", "FP"):
                floor = minimum_processors(get_strategy(name), tree, CAT_40K)
                assert floor is not None and floor <= 30
                floor5 = minimum_processors(get_strategy(name), tree, CAT_5K)
                assert floor5 is not None and floor5 <= 20

    def test_fits_in_memory_consistency(self):
        tree = make_shape("wide_bushy", NAMES)
        fp = get_strategy("FP").schedule(tree, CAT_40K, 30)
        assert fits_in_memory(fp, CAT_40K)
        fp_small = get_strategy("FP").schedule(tree, CAT_40K, 20)
        assert not fits_in_memory(fp_small, CAT_40K)

    def test_impossible_fit_returns_none(self):
        tiny = MemoryModel(node_bytes=3 * 2**20, runtime_bytes=3 * 2**20)
        tree = make_shape("wide_bushy", NAMES)
        assert minimum_processors(
            get_strategy("SP"), tree, CAT_40K, tiny, upper=64
        ) is None


class TestReport:
    def test_report_mentions_fit(self):
        tree = make_shape("wide_bushy", NAMES)
        fp = get_strategy("FP").schedule(tree, CAT_40K, 30)
        text = memory_report(fp, CAT_40K)
        assert "FP on 30 processors" in text
        assert "fits" in text

    def test_report_flags_misfit(self):
        tree = make_shape("wide_bushy", NAMES)
        fp = get_strategy("FP").schedule(tree, CAT_40K, 15)
        assert "DOES NOT FIT" in memory_report(fp, CAT_40K)
