"""The Section 4.3 cost model."""

import pytest

from repro.core import (
    Catalog,
    CostModel,
    Join,
    Leaf,
    SHAPE_NAMES,
    example_tree,
    joins_postorder,
    make_shape,
    one_to_one_estimator,
    paper_relation_names,
    selectivity_estimator,
)


NAMES = paper_relation_names(10)


class TestFormula:
    def test_base_base(self):
        """a = b = 1 for base relations, c = 2: cost = n1 + n2 + 2r."""
        model = CostModel()
        assert model.join_cost(100, 200, 50, True, True) == 100 + 200 + 100

    def test_intermediate_operands_cost_double(self):
        model = CostModel()
        assert model.join_cost(100, 200, 50, False, True) == 200 + 200 + 100
        assert model.join_cost(100, 200, 50, True, False) == 100 + 400 + 100
        assert model.join_cost(100, 200, 50, False, False) == 200 + 400 + 100

    def test_custom_coefficients(self):
        model = CostModel(base_coeff=1, intermediate_coeff=3, result_coeff=5)
        assert model.join_cost(10, 10, 10, False, True) == 30 + 10 + 50


class TestEstimators:
    def test_one_to_one(self):
        assert one_to_one_estimator(100, 200) == 100

    def test_selectivity(self):
        est = selectivity_estimator(0.01)
        assert est(100, 200) == pytest.approx(200)

    def test_selectivity_rejects_negative(self):
        with pytest.raises(ValueError):
            selectivity_estimator(-1)


class TestRegularQuery:
    """Section 4.1: all trees of the regular query cost the same."""

    def test_total_cost_is_44n_for_every_shape(self):
        model = CostModel()
        catalog = Catalog.regular(NAMES, 5000)
        for shape in SHAPE_NAMES:
            tree = make_shape(shape, NAMES)
            assert model.total_cost(tree, catalog) == 44 * 5000

    def test_total_cost_formula_structure(self):
        """10 base operands (1 unit), 8 intermediate (2), 9 results (2):
        (10 + 16 + 18) n = 44n."""
        model = CostModel()
        catalog = Catalog.regular(NAMES, 7)
        tree = make_shape("wide_bushy", NAMES)
        assert model.total_cost(tree, catalog) == 44 * 7

    def test_annotation_cardinalities(self):
        model = CostModel()
        catalog = Catalog.regular(NAMES, 1000)
        tree = make_shape("left_linear", NAMES)
        annotation = model.annotate(tree, catalog)
        for cost in annotation.values():
            assert cost.n1 == cost.n2 == cost.result == 1000


class TestAnnotation:
    def test_base_flags(self):
        model = CostModel()
        tree = Join(Join(Leaf("A"), Leaf("B")), Leaf("C"))
        catalog = Catalog.regular(["A", "B", "C"], 10)
        annotation = model.annotate(tree, catalog)
        bottom, top = joins_postorder(tree)
        assert annotation[bottom].left_base and annotation[bottom].right_base
        assert not annotation[top].left_base
        assert annotation[top].right_base

    def test_work_override(self):
        """Explicit work labels replace the computed cost (Figure 2)."""
        model = CostModel()
        tree = example_tree()
        catalog = Catalog.regular(["A", "B", "C", "D", "E"], 100)
        annotation = model.annotate(tree, catalog)
        assert [annotation[j].cost for j in joins_postorder(tree)] == [4, 3, 5, 1]

    def test_unknown_relation_raises(self):
        model = CostModel()
        with pytest.raises(KeyError, match="not in catalog"):
            model.annotate(Join(Leaf("A"), Leaf("Z")), Catalog.regular(["A"], 5))

    def test_subtree_costs(self):
        model = CostModel()
        tree = example_tree()
        catalog = Catalog.regular(["A", "B", "C", "D", "E"], 100)
        subtree = model.subtree_costs(tree, catalog)
        j4, j3, j5, j1 = joins_postorder(tree)
        assert subtree[j4] == 4
        assert subtree[j3] == 3
        assert subtree[j5] == 4 + 3 + 5
        assert subtree[j1] == 4 + 3 + 5 + 1

    def test_subset_estimator_takes_precedence(self):
        catalog = Catalog(
            {"A": 10, "B": 10},
            subset_estimator=lambda subset: 77.0,
        )
        model = CostModel()
        annotation = model.annotate(Join(Leaf("A"), Leaf("B")), catalog)
        (cost,) = annotation.values()
        assert cost.result == 77.0
