"""Right-deep segmentation (Figure 5)."""

import pytest

from repro.core import (
    Catalog,
    CostModel,
    example_tree,
    make_shape,
    paper_relation_names,
)
from repro.core.strategies import decompose, waves
from repro.core.trees import Leaf, joins_postorder


NAMES = paper_relation_names(10)


class TestExampleTree:
    def test_two_segments(self):
        """Section 3.3: segment {4} runs first, then the right-deep
        chain {1, 5, 3}."""
        segments = decompose(example_tree())
        assert sorted(len(s) for s in segments) == [1, 3]
        chain = next(s for s in segments if len(s) == 3)
        assert [j.label for j in chain.joins] == ["1", "5", "3"]
        single = next(s for s in segments if len(s) == 1)
        assert single.top.label == "4"

    def test_chain_linked_through_right_children(self):
        chain = next(s for s in decompose(example_tree()) if len(s) == 3)
        for upper, lower in zip(chain.joins, chain.joins[1:]):
            assert upper.right is lower

    def test_probe_relation_is_base(self):
        for segment in decompose(example_tree()):
            assert isinstance(segment.probe_relation, Leaf)

    def test_producers(self):
        segments = decompose(example_tree())
        chain = next(s for s in segments if len(s) == 3)
        single = next(s for s in segments if len(s) == 1)
        assert chain.producers == [single]
        assert single.producers == []

    def test_waves_order(self):
        segments = decompose(example_tree())
        plan = waves(segments)
        assert len(plan) == 2
        assert plan[0][0].top.label == "4"
        assert plan[1][0].top.label == "1"

    def test_work(self):
        catalog = Catalog.regular(["A", "B", "C", "D", "E"], 100)
        tree = example_tree()
        annotation = CostModel().annotate(tree, catalog)
        segments = decompose(tree)
        chain = next(s for s in segments if len(s) == 3)
        assert chain.work(annotation) == 1 + 5 + 3


class TestShapeDegenerations:
    def test_left_linear_all_singleton_segments(self):
        """Left-linear: no right-deep segments → RD degenerates to SP."""
        segments = decompose(make_shape("left_linear", NAMES))
        assert all(len(s) == 1 for s in segments)
        assert len(segments) == 9
        # Strict producer chain: one segment per wave.
        assert all(len(wave) == 1 for wave in waves(segments))

    def test_right_linear_single_segment(self):
        """Right-linear: the whole query is one segment → RD ≈ FP."""
        segments = decompose(make_shape("right_linear", NAMES))
        assert len(segments) == 1
        assert len(segments[0]) == 9

    def test_right_bushy_long_pipeline_with_independent_builds(self):
        """Section 4.4: a fairly long probe pipeline whose left operands
        are processed independently in parallel."""
        segments = decompose(make_shape("right_bushy", NAMES))
        sizes = sorted(len(s) for s in segments)
        assert max(sizes) == 7
        first_wave = waves(segments)[0]
        assert len(first_wave) >= 2  # independent pair segments

    def test_left_bushy_short_segments(self):
        """Section 4.4: RD's independent right-deep segments are very
        short on the left-oriented tree."""
        segments = decompose(make_shape("left_bushy", NAMES))
        assert max(len(s) for s in segments) <= 2

    def test_segments_partition_the_joins(self):
        for shape in ("left_linear", "left_bushy", "wide_bushy",
                      "right_bushy", "right_linear"):
            tree = make_shape(shape, NAMES)
            segments = decompose(tree)
            seen = [j for s in segments for j in s.joins]
            assert len(seen) == 9
            assert {id(j) for j in seen} == {id(j) for j in joins_postorder(tree)}

    def test_leaf_rejected(self):
        with pytest.raises(ValueError):
            decompose(Leaf("A"))
