"""Join-tree ADT and structural predicates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Join,
    Leaf,
    height,
    is_bushy,
    is_left_linear,
    is_linear,
    is_right_linear,
    joins_postorder,
    leaf_names,
    leaves,
    mirror,
    num_joins,
    orientation,
    render,
    structurally_equal,
)
from repro.core.trees import map_labels, parent_map


def small_tree():
    #      top
    #     /   \
    #    j1    D
    #   /  \
    #  A   j2
    #     /  \
    #    B    C
    j2 = Join(Leaf("B"), Leaf("C"), label="j2")
    j1 = Join(Leaf("A"), j2, label="j1")
    return Join(j1, Leaf("D"), label="top")


@st.composite
def random_trees(draw, max_leaves=9):
    count = draw(st.integers(2, max_leaves))
    nodes = [Leaf(f"R{i}") for i in range(count)]
    while len(nodes) > 1:
        i = draw(st.integers(0, len(nodes) - 2))
        left = nodes.pop(i)
        right = nodes.pop(i)
        nodes.insert(i, Join(left, right))
    return nodes[0]


class TestBasics:
    def test_leaves_left_to_right(self):
        assert leaf_names(small_tree()) == ["A", "B", "C", "D"]

    def test_postorder_children_first(self):
        order = [j.label for j in joins_postorder(small_tree())]
        assert order == ["j2", "j1", "top"]

    def test_num_joins(self):
        assert num_joins(small_tree()) == 3
        assert num_joins(Leaf("A")) == 0

    def test_height(self):
        assert height(Leaf("A")) == 0
        assert height(small_tree()) == 3

    def test_join_rejects_non_nodes(self):
        with pytest.raises(TypeError):
            Join("A", Leaf("B"))

    def test_parent_map(self):
        tree = small_tree()
        parents = parent_map(tree)
        joins = joins_postorder(tree)
        assert parents[joins[-1]] is None
        assert parents[joins[0]].label == "j1"

    def test_str_rendering(self):
        assert str(Join(Leaf("A"), Leaf("B"))) == "(A ⋈ B)"

    def test_render_multiline(self):
        text = render(small_tree())
        assert "A" in text and "top" in text


class TestPredicates:
    def test_left_linear(self):
        tree = Join(Join(Leaf("A"), Leaf("B")), Leaf("C"))
        assert is_left_linear(tree)
        assert is_linear(tree)
        assert not is_right_linear(tree)
        assert not is_bushy(tree)

    def test_right_linear(self):
        tree = Join(Leaf("A"), Join(Leaf("B"), Leaf("C")))
        assert is_right_linear(tree)
        assert is_linear(tree)

    def test_two_leaf_tree_is_both(self):
        tree = Join(Leaf("A"), Leaf("B"))
        assert is_left_linear(tree) and is_right_linear(tree)

    def test_bushy(self):
        tree = Join(Join(Leaf("A"), Leaf("B")), Join(Leaf("C"), Leaf("D")))
        assert is_bushy(tree)
        assert not is_linear(tree)

    def test_orientation_signs(self):
        left = Join(Join(Join(Leaf("A"), Leaf("B")), Leaf("C")), Leaf("D"))
        right = Join(Leaf("A"), Join(Leaf("B"), Join(Leaf("C"), Leaf("D"))))
        assert orientation(left) == -1.0
        assert orientation(right) == 1.0

    def test_orientation_balanced_is_zero(self):
        tree = Join(Join(Leaf("A"), Leaf("B")), Join(Leaf("C"), Leaf("D")))
        assert orientation(tree) == 0.0


class TestMirror:
    def test_mirror_reverses_leaves(self):
        assert leaf_names(mirror(small_tree())) == ["D", "C", "B", "A"]

    def test_mirror_flips_linearity(self):
        tree = Join(Join(Leaf("A"), Leaf("B")), Leaf("C"))
        assert is_right_linear(mirror(tree))

    def test_mirror_preserves_labels_and_work(self):
        tree = Join(Leaf("A"), Leaf("B"), label="x", work=7.0)
        m = mirror(tree)
        assert m.label == "x" and m.work == 7.0

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_property_mirror_is_involution(self, tree):
        assert structurally_equal(mirror(mirror(tree)), tree)

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_property_mirror_negates_orientation(self, tree):
        assert orientation(mirror(tree)) == pytest.approx(-orientation(tree))


class TestStructuralEquality:
    def test_equal(self):
        assert structurally_equal(small_tree(), small_tree())

    def test_labels_ignored(self):
        a = Join(Leaf("A"), Leaf("B"), label="x")
        b = Join(Leaf("A"), Leaf("B"), label="y")
        assert structurally_equal(a, b)

    def test_leaf_names_matter(self):
        assert not structurally_equal(
            Join(Leaf("A"), Leaf("B")), Join(Leaf("A"), Leaf("C"))
        )

    def test_shape_matters(self):
        a = Join(Join(Leaf("A"), Leaf("B")), Leaf("C"))
        b = Join(Leaf("A"), Join(Leaf("B"), Leaf("C")))
        assert not structurally_equal(a, b)


class TestMapLabels:
    def test_assigns_by_postorder_index(self):
        tree = map_labels(small_tree(), lambda join, i: str(i))
        assert [j.label for j in joins_postorder(tree)] == ["0", "1", "2"]


class TestProperties:
    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_property_joins_equals_leaves_minus_one(self, tree):
        assert num_joins(tree) == len(leaves(tree)) - 1

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_property_postorder_parents_after_children(self, tree):
        order = {id(j): i for i, j in enumerate(joins_postorder(tree))}
        for join in joins_postorder(tree):
            for child in (join.left, join.right):
                if isinstance(child, Join):
                    assert order[id(child)] < order[id(join)]
