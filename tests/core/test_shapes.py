"""The five experimental shapes (Figure 8) and the example tree (Figure 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    SHAPE_NAMES,
    example_tree,
    is_bushy,
    is_left_linear,
    is_right_linear,
    joins_postorder,
    leaf_names,
    make_shape,
    mirror,
    num_joins,
    orientation,
    paper_relation_names,
    structurally_equal,
)
from repro.core.shapes import left_bushy, left_linear, right_bushy, right_linear, wide_bushy
from repro.core.trees import Join, Leaf, height


NAMES = paper_relation_names(10)


class TestShapeStructure:
    def test_all_shapes_have_nine_joins(self):
        for shape in SHAPE_NAMES:
            assert num_joins(make_shape(shape, NAMES)) == 9

    def test_left_linear_is_left_linear(self):
        assert is_left_linear(left_linear(NAMES))

    def test_right_linear_is_right_linear(self):
        assert is_right_linear(right_linear(NAMES))

    def test_linear_shapes_are_not_bushy(self):
        assert not is_bushy(left_linear(NAMES))
        assert not is_bushy(right_linear(NAMES))

    def test_bushy_shapes_are_bushy(self):
        assert is_bushy(left_bushy(NAMES))
        assert is_bushy(right_bushy(NAMES))
        assert is_bushy(wide_bushy(NAMES))

    def test_orientations(self):
        assert orientation(left_linear(NAMES)) == -1.0
        assert orientation(left_bushy(NAMES)) < -0.5
        # orientation() only scores joins with exactly one join child,
        # so the balanced tree's few scored joins lean with the mid
        # rounding; wide-bushiness is the meaningful metric for it.
        from repro.optimizer.guidelines import wide_bushiness
        assert wide_bushiness(wide_bushy(NAMES)) >= 0.3
        assert wide_bushiness(left_bushy(NAMES)) < 0.3
        assert orientation(right_bushy(NAMES)) > 0.5
        assert orientation(right_linear(NAMES)) == 1.0

    def test_wide_bushy_is_balanced(self):
        assert height(wide_bushy(NAMES)) == 4  # ceil(log2(10)) = 4

    def test_long_bushy_is_long(self):
        """Section 4.4: the left-oriented bushy pipeline is only
        slightly shorter than the linear one (7 vs 9 for 10 relations)."""
        assert height(left_bushy(NAMES)) == 7
        assert height(right_bushy(NAMES)) == 7
        assert height(left_linear(NAMES)) == 9

    def test_right_bushy_is_mirror_of_left_bushy(self):
        assert structurally_equal(
            mirror(left_bushy(NAMES)),
            right_bushy(list(reversed(NAMES))),
        )

    def test_shapes_cover_all_relations(self):
        for shape in SHAPE_NAMES:
            assert sorted(leaf_names(make_shape(shape, NAMES))) == sorted(NAMES)

    def test_unknown_shape_rejected(self):
        with pytest.raises(ValueError, match="unknown shape"):
            make_shape("zigzag", NAMES)

    def test_too_few_relations_rejected(self):
        with pytest.raises(ValueError):
            make_shape("left_linear", ["R0"])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_shape("wide_bushy", ["A", "A", "B"])

    @given(st.integers(2, 14))
    @settings(max_examples=20, deadline=None)
    def test_property_every_shape_any_size(self, count):
        names = paper_relation_names(count)
        for shape in SHAPE_NAMES:
            tree = make_shape(shape, names)
            assert num_joins(tree) == count - 1
            assert sorted(leaf_names(tree)) == sorted(names)


class TestExampleTree:
    def test_labels_and_works(self):
        tree = example_tree()
        joins = joins_postorder(tree)
        assert [j.label for j in joins] == ["4", "3", "5", "1"]
        assert [j.work for j in joins] == [4.0, 3.0, 5.0, 1.0]

    def test_five_relations_four_joins(self):
        tree = example_tree()
        assert leaf_names(tree) == ["A", "D", "E", "B", "C"]
        assert num_joins(tree) == 4

    def test_bottom_joins_have_base_operands_only(self):
        """Figure 7's narration: 'the bottom two join operations start
        immediately, as their operands are available as base-relations'."""
        joins = joins_postorder(example_tree())
        for join in joins[:2]:
            assert isinstance(join.left, Leaf) and isinstance(join.right, Leaf)

    def test_join5_has_two_intermediate_operands(self):
        """The bushy step whose operands must 'start producing output'."""
        j5 = joins_postorder(example_tree())[2]
        assert j5.label == "5"
        assert isinstance(j5.left, Join) and isinstance(j5.right, Join)

    def test_top_join_left_operand_is_base(self):
        """Figure 7: the top join 'may start immediately hashing its
        left-operand'."""
        top = joins_postorder(example_tree())[-1]
        assert top.label == "1"
        assert isinstance(top.left, Leaf)
        assert isinstance(top.right, Join)
