"""The four strategies' planning behaviour (Section 3)."""

import pytest

from repro.core import (
    Catalog,
    SHAPE_NAMES,
    example_tree,
    get_strategy,
    joins_postorder,
    make_shape,
    paper_relation_names,
    strategy_names,
)
from repro.core.strategies import (
    FullParallel,
    SegmentedRightDeep,
    SequentialParallel,
    SynchronousExecution,
)

NAMES = paper_relation_names(10)
CATALOG = Catalog.regular(NAMES, 1000)


def schedule_for(strategy, shape, processors=20):
    return get_strategy(strategy).schedule(
        make_shape(shape, NAMES), CATALOG, processors
    )


class TestRegistry:
    def test_paper_order(self):
        assert strategy_names() == ["SP", "SE", "RD", "FP"]

    def test_lookup_case_insensitive(self):
        assert isinstance(get_strategy("fp"), FullParallel)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("XX")

    def test_titles(self):
        assert SequentialParallel.title == "Sequential Parallel"
        assert SynchronousExecution.title == "Synchronous Execution"
        assert SegmentedRightDeep.title == "Segmented Right-Deep"
        assert FullParallel.title == "Full Parallel"

    def test_only_sp_needs_no_cost_function(self):
        """Section 5: SP 'does not need a cost function to estimate the
        costs of the individual join operations'."""
        assert not SequentialParallel.needs_cost_function
        assert SynchronousExecution.needs_cost_function
        assert SegmentedRightDeep.needs_cost_function
        assert FullParallel.needs_cost_function


class TestAllSchedulesValid:
    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    @pytest.mark.parametrize("processors", [9, 20, 80])
    def test_validates(self, strategy, shape, processors):
        schedule = schedule_for(strategy, shape, processors)
        assert len(schedule.tasks) == 9


class TestSP:
    def test_every_join_on_all_processors(self):
        schedule = schedule_for("SP", "wide_bushy", 16)
        for task in schedule.tasks:
            assert task.processors == tuple(range(16))

    def test_strict_sequence(self):
        schedule = schedule_for("SP", "wide_bushy", 16)
        for i, task in enumerate(schedule.tasks):
            assert task.start_after == ((i - 1,) if i else ())

    def test_simple_algorithm_everywhere(self):
        schedule = schedule_for("SP", "right_bushy", 16)
        assert all(t.algorithm == "simple" for t in schedule.tasks)

    def test_no_pipelined_inputs(self):
        schedule = schedule_for("SP", "right_linear", 16)
        for task in schedule.tasks:
            for spec in task.inputs():
                assert spec.mode in ("base", "materialized")

    def test_process_count(self):
        assert schedule_for("SP", "left_linear", 30).operation_processes() == 270


class TestSE:
    def test_degenerates_to_sp_on_linear_trees(self):
        """Section 3.2/4.4: no independent subtrees → SE allocates all
        processors sequentially to each join."""
        for shape in ("left_linear", "right_linear"):
            se = schedule_for("SE", shape, 24)
            for task in se.tasks:
                assert task.processors == tuple(range(24))

    def test_splits_processors_over_independent_subtrees(self):
        schedule = schedule_for("SE", "wide_bushy", 24)
        joins = joins_postorder(schedule.tree)
        root_task = schedule.tasks[-1]
        left_child_task = schedule.task_for(root_task.join.left)
        right_child_task = schedule.task_for(root_task.join.right)
        assert not set(left_child_task.processors) & set(right_child_task.processors)
        assert root_task.processors == tuple(range(24))

    def test_example_tree_allocation(self):
        """Figure 4: joins 3 and 4 split the 10 processors 4/6."""
        catalog = Catalog.regular(["A", "B", "C", "D", "E"], 100)
        schedule = get_strategy("SE").schedule(example_tree(), catalog, 10)
        by_label = {t.join.label: t for t in schedule.tasks}
        assert len(by_label["4"].processors) == 6
        assert len(by_label["3"].processors) == 4
        assert by_label["5"].processors == tuple(range(10))
        assert by_label["1"].processors == tuple(range(10))

    def test_join_waits_for_both_operands(self):
        schedule = schedule_for("SE", "wide_bushy", 24)
        for task in schedule.tasks:
            for spec in task.inputs():
                if not spec.is_base:
                    assert spec.mode == "materialized"
                    assert spec.source in task.start_after

    def test_allocation_proportional_to_subtree_work(self):
        """[CYW92]: processors proportional to total subtree work."""
        names = ["A", "B", "C", "D"]
        # A⋈B is 10x the work of C⋈D.
        catalog = Catalog({"A": 1000, "B": 1000, "C": 100, "D": 100})
        from repro.core.trees import Join, Leaf

        tree = Join(Join(Leaf("A"), Leaf("B")), Join(Leaf("C"), Leaf("D")))
        schedule = get_strategy("SE").schedule(tree, catalog, 22)
        heavy = schedule.tasks[0]
        light = schedule.tasks[1]
        assert heavy.parallelism > 3 * light.parallelism


class TestRD:
    def test_degenerates_to_sp_on_left_linear(self):
        rd = schedule_for("RD", "left_linear", 24)
        for task in rd.tasks:
            assert task.processors == tuple(range(24))
        # Sequential waves, like SP.
        for task in rd.tasks[1:]:
            assert task.start_after

    def test_right_linear_is_one_pipeline(self):
        """One segment: same process count as FP, no barriers."""
        rd = schedule_for("RD", "right_linear", 24)
        assert rd.operation_processes() == 24
        assert all(not t.start_after for t in rd.tasks)

    def test_within_segment_right_inputs_pipelined(self):
        rd = schedule_for("RD", "right_linear", 24)
        for task in rd.tasks[:-1]:  # every non-bottom join of the chain
            pass
        pipelined = [
            t for t in rd.tasks
            if not t.right_input.is_base and t.right_input.mode == "pipelined"
        ]
        assert len(pipelined) == 8

    def test_left_join_inputs_materialized(self):
        rd = schedule_for("RD", "right_bushy", 24)
        for task in rd.tasks:
            if not task.left_input.is_base:
                assert task.left_input.mode == "materialized"

    def test_example_tree_waves(self):
        """Figure 6: join 4 first on all 10 processors, then the
        pipeline 1-5-3 with processors 2/5/3."""
        catalog = Catalog.regular(["A", "B", "C", "D", "E"], 100)
        schedule = get_strategy("RD").schedule(example_tree(), catalog, 10)
        by_label = {t.join.label: t for t in schedule.tasks}
        assert by_label["4"].processors == tuple(range(10))
        assert not by_label["4"].start_after
        for label, procs in (("1", 1), ("5", 6), ("3", 3)):
            assert len(by_label[label].processors) == procs
            assert set(by_label[label].start_after) == {by_label["4"].index}

    def test_simple_algorithm_everywhere(self):
        rd = schedule_for("RD", "right_bushy", 24)
        assert all(t.algorithm == "simple" for t in rd.tasks)
        assert all(t.build_side == "left" for t in rd.tasks)


class TestFP:
    def test_one_process_per_processor(self):
        for shape in SHAPE_NAMES:
            fp = schedule_for("FP", shape, 40)
            assert fp.operation_processes() == 40

    def test_disjoint_private_processors(self):
        fp = schedule_for("FP", "wide_bushy", 40)
        seen = set()
        for task in fp.tasks:
            assert not seen & set(task.processors)
            seen |= set(task.processors)

    def test_no_barriers_and_all_pipelined(self):
        fp = schedule_for("FP", "left_bushy", 40)
        for task in fp.tasks:
            assert not task.start_after
            assert task.algorithm == "pipelining"
            for spec in task.inputs():
                assert spec.mode in ("base", "pipelined")

    def test_allocation_proportional_to_work(self):
        """Figure 7: works 1,5,3,4 over 10 processors → 1,4,2,3... in
        postorder [4,3,5,1] order → [3,2,4,1]."""
        catalog = Catalog.regular(["A", "B", "C", "D", "E"], 100)
        fp = get_strategy("FP").schedule(example_tree(), catalog, 10)
        by_label = {t.join.label: len(t.processors) for t in fp.tasks}
        assert by_label == {"4": 3, "3": 2, "5": 4, "1": 1}

    def test_minimum_one_processor_per_join(self):
        fp = schedule_for("FP", "left_linear", 9)
        assert all(t.parallelism == 1 for t in fp.tasks)

    def test_too_few_processors_rejected(self):
        with pytest.raises(ValueError):
            schedule_for("FP", "left_linear", 8)


class TestCommonBehaviour:
    def test_zero_processors_rejected(self):
        with pytest.raises(ValueError):
            schedule_for("SP", "left_linear", 0)

    def test_single_join_tree(self):
        from repro.core.trees import Join, Leaf

        tree = Join(Leaf("A"), Leaf("B"))
        catalog = Catalog.regular(["A", "B"], 50)
        for name in strategy_names():
            schedule = get_strategy(name).schedule(tree, catalog, 4)
            assert len(schedule.tasks) == 1
            assert schedule.tasks[0].processors == (0, 1, 2, 3)

    def test_leaf_only_tree_rejected(self):
        from repro.core.trees import Leaf

        with pytest.raises(ValueError, match="no joins"):
            get_strategy("SP").schedule(Leaf("A"), Catalog.regular(["A"], 5), 4)
