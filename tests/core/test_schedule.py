"""Parallel-schedule representation and validation."""

import pytest

from repro.core import (
    Catalog,
    InputSpec,
    Join,
    JoinTask,
    Leaf,
    ParallelSchedule,
    ScheduleError,
    get_strategy,
    make_shape,
    paper_relation_names,
)
from repro.core.trees import joins_postorder


def two_join_tree():
    return Join(Join(Leaf("A"), Leaf("B")), Leaf("C"))


def make_tasks(tree, procs0=(0, 1), procs1=(0, 1), after1=(0,), mode="materialized"):
    j0, j1 = joins_postorder(tree)
    algorithm = "pipelining" if mode == "pipelined" else "simple"
    t0 = JoinTask(
        index=0, join=j0, processors=procs0, algorithm=algorithm,
        left_input=InputSpec("base", "A"), right_input=InputSpec("base", "B"),
    )
    t1 = JoinTask(
        index=1, join=j1, processors=procs1, algorithm=algorithm,
        left_input=InputSpec(mode, 0), right_input=InputSpec("base", "C"),
        start_after=after1,
    )
    return [t0, t1]


class TestInputSpec:
    def test_base_requires_name(self):
        with pytest.raises(ValueError):
            InputSpec("base", 0)

    def test_intermediate_requires_index(self):
        with pytest.raises(ValueError):
            InputSpec("materialized", "A")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            InputSpec("streaming", 0)


class TestJoinTask:
    def test_simple_join_cannot_pipeline_build_operand(self):
        tree = two_join_tree()
        j0, j1 = joins_postorder(tree)
        with pytest.raises(ValueError, match="cannot pipeline its build"):
            JoinTask(
                index=1, join=j1, processors=(0,), algorithm="simple",
                left_input=InputSpec("pipelined", 0),
                right_input=InputSpec("base", "C"),
                build_side="left",
            )

    def test_simple_join_may_pipeline_probe_operand(self):
        tree = two_join_tree()
        _, j1 = joins_postorder(tree)
        task = JoinTask(
            index=1, join=j1, processors=(0,), algorithm="simple",
            left_input=InputSpec("pipelined", 0),
            right_input=InputSpec("base", "C"),
            build_side="right",
        )
        assert task.build_side == "right"

    def test_requires_processors(self):
        tree = two_join_tree()
        j0, _ = joins_postorder(tree)
        with pytest.raises(ValueError, match="no processors"):
            JoinTask(
                index=0, join=j0, processors=(), algorithm="simple",
                left_input=InputSpec("base", "A"),
                right_input=InputSpec("base", "B"),
            )

    def test_duplicate_processors_rejected(self):
        tree = two_join_tree()
        j0, _ = joins_postorder(tree)
        with pytest.raises(ValueError, match="duplicate"):
            JoinTask(
                index=0, join=j0, processors=(1, 1), algorithm="simple",
                left_input=InputSpec("base", "A"),
                right_input=InputSpec("base", "B"),
            )

    def test_unknown_algorithm(self):
        tree = two_join_tree()
        j0, _ = joins_postorder(tree)
        with pytest.raises(ValueError, match="algorithm"):
            JoinTask(
                index=0, join=j0, processors=(0,), algorithm="sort-merge",
                left_input=InputSpec("base", "A"),
                right_input=InputSpec("base", "B"),
            )


class TestValidation:
    def test_valid_schedule_passes(self):
        tree = two_join_tree()
        schedule = ParallelSchedule("X", tree, 2, make_tasks(tree))
        assert schedule.validate() is schedule

    def test_wrong_task_count(self):
        tree = two_join_tree()
        tasks = make_tasks(tree)[:1]
        with pytest.raises(ScheduleError, match="tasks for"):
            ParallelSchedule("X", tree, 2, tasks).validate()

    def test_wrong_source_index(self):
        tree = two_join_tree()
        tasks = make_tasks(tree)
        j1 = tasks[1]
        tasks[1] = JoinTask(
            index=1, join=j1.join, processors=j1.processors, algorithm="simple",
            left_input=InputSpec("materialized", 1),
            right_input=InputSpec("base", "C"), start_after=(0,),
        )
        with pytest.raises(ScheduleError, match="must come from"):
            ParallelSchedule("X", tree, 2, tasks).validate()

    def test_wrong_base_name(self):
        tree = two_join_tree()
        tasks = make_tasks(tree)
        j0 = tasks[0]
        tasks[0] = JoinTask(
            index=0, join=j0.join, processors=j0.processors, algorithm="simple",
            left_input=InputSpec("base", "Z"),
            right_input=InputSpec("base", "B"),
        )
        with pytest.raises(ScheduleError, match="base relation"):
            ParallelSchedule("X", tree, 2, tasks).validate()

    def test_processor_out_of_range(self):
        tree = two_join_tree()
        tasks = make_tasks(tree, procs0=(0, 5))
        with pytest.raises(ScheduleError, match="outside"):
            ParallelSchedule("X", tree, 2, tasks).validate()

    def test_overlapping_concurrent_tasks_rejected(self):
        """Two tasks without an ordering edge must not share processors
        (the paper never lets a processor work on two joins at once)."""
        tree = two_join_tree()
        tasks = make_tasks(tree, after1=(), mode="pipelined")
        # pipelined input means no implicit ordering edge; shared procs.
        with pytest.raises(ScheduleError, match="share"):
            ParallelSchedule("X", tree, 2, tasks).validate()

    def test_materialized_edge_orders_tasks(self):
        """A materialized producer→consumer edge is an implicit
        barrier, so sharing processors is fine."""
        tree = two_join_tree()
        tasks = make_tasks(tree, after1=())  # materialized, no explicit dep
        ParallelSchedule("X", tree, 2, tasks).validate()

    def test_disjoint_pipelined_tasks_allowed(self):
        tree = two_join_tree()
        tasks = make_tasks(tree, procs0=(0,), procs1=(1,), after1=(), mode="pipelined")
        schedule = ParallelSchedule("X", tree, 2, tasks).validate()
        assert schedule.may_overlap(tasks[0], tasks[1])

    def test_self_dependency_rejected(self):
        tree = two_join_tree()
        tasks = make_tasks(tree, after1=(1,))
        with pytest.raises(ScheduleError, match="itself"):
            ParallelSchedule("X", tree, 2, tasks).validate()


class TestMetrics:
    def test_operation_processes(self):
        names = paper_relation_names(10)
        catalog = Catalog.regular(names, 100)
        tree = make_shape("left_linear", names)
        schedule = get_strategy("SP").schedule(tree, catalog, 80)
        # "So, for the 80 processor case, [#joins × 80] operation
        # processes need to be initialized" (Section 4.4).
        assert schedule.operation_processes() == 9 * 80

    def test_stream_count_left_linear_sp(self):
        names = paper_relation_names(10)
        catalog = Catalog.regular(names, 100)
        tree = make_shape("left_linear", names)
        schedule = get_strategy("SP").schedule(tree, catalog, 80)
        # "a refragmentation of one operand generates 6400 tuple
        # streams" — 8 intermediate operands for the 10-way query.
        assert schedule.stream_count() == 8 * 6400

    def test_fp_uses_one_process_per_processor(self):
        names = paper_relation_names(10)
        catalog = Catalog.regular(names, 100)
        for shape in ("left_linear", "wide_bushy"):
            schedule = get_strategy("FP").schedule(
                make_shape(shape, names), catalog, 80
            )
            assert schedule.operation_processes() == 80

    def test_describe_mentions_all_tasks(self):
        tree = two_join_tree()
        schedule = ParallelSchedule("X", tree, 2, make_tasks(tree)).validate()
        text = schedule.describe()
        assert "join#0" in text and "join#1" in text
