"""Cost-free right-orientation rewrites (Section 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Catalog,
    CostModel,
    SHAPE_NAMES,
    is_left_linear,
    is_right_linear,
    leaf_names,
    make_shape,
    paper_relation_names,
)
from repro.core.rewrite import left_orient, orientation_gain, right_orient
from repro.core.strategies import decompose
from repro.core.trees import Join, Leaf, structurally_equal

NAMES = paper_relation_names(10)
CATALOG = Catalog.regular(NAMES, 1000)


@st.composite
def random_trees(draw, max_leaves=10):
    count = draw(st.integers(2, max_leaves))
    nodes = [Leaf(f"R{i}") for i in range(count)]
    while len(nodes) > 1:
        i = draw(st.integers(0, len(nodes) - 2))
        nodes.insert(i, Join(nodes.pop(i), nodes.pop(i)))
    return nodes[0]


class TestRightOrient:
    def test_left_linear_becomes_right_linear(self):
        out = right_orient(make_shape("left_linear", NAMES))
        assert is_right_linear(out)

    def test_left_bushy_becomes_one_long_segment_tree(self):
        tree = make_shape("left_bushy", NAMES)
        out = right_orient(tree)
        before = max(len(s) for s in decompose(tree))
        after = max(len(s) for s in decompose(out))
        assert before <= 2
        assert after == 7  # same as the native right-oriented shape

    def test_right_linear_unchanged(self):
        tree = make_shape("right_linear", NAMES)
        assert structurally_equal(right_orient(tree), tree)

    def test_preserves_leaf_set(self):
        for shape in SHAPE_NAMES:
            tree = make_shape(shape, NAMES)
            assert sorted(leaf_names(right_orient(tree))) == sorted(NAMES)

    def test_cost_free(self):
        """Swapping operands never changes the §4.3 total cost."""
        model = CostModel()
        for shape in SHAPE_NAMES:
            tree = make_shape(shape, NAMES)
            assert model.total_cost(tree, CATALOG) == model.total_cost(
                right_orient(tree), CATALOG
            )

    def test_idempotent(self):
        for shape in SHAPE_NAMES:
            once = right_orient(make_shape(shape, NAMES))
            assert structurally_equal(right_orient(once), once)

    def test_preserves_labels(self):
        tree = Join(Join(Leaf("A"), Leaf("B"), label="x"), Leaf("C"), label="y")
        out = right_orient(tree)
        labels = {out.label}
        child = out.right if isinstance(out.right, Join) else out.left
        labels.add(child.label)
        assert labels == {"x", "y"}

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_property_segments_never_shorter(self, tree):
        before = max(len(s) for s in decompose(tree))
        after = max(len(s) for s in decompose(right_orient(tree)))
        assert after >= before

    @given(random_trees())
    @settings(max_examples=40, deadline=None)
    def test_property_cost_invariant(self, tree):
        names = leaf_names(tree)
        catalog = Catalog.regular(names, 100)
        model = CostModel()
        assert model.total_cost(tree, catalog) == pytest.approx(
            model.total_cost(right_orient(tree), catalog)
        )


class TestLeftOrient:
    def test_is_mirror_of_right_orient(self):
        tree = make_shape("wide_bushy", NAMES)
        from repro.core import mirror

        assert structurally_equal(left_orient(tree), mirror(right_orient(tree)))

    def test_left_linear_fixed_point(self):
        tree = make_shape("left_linear", NAMES)
        assert is_left_linear(left_orient(tree))


class TestOrientationGain:
    def test_right_linear_zero(self):
        assert orientation_gain(make_shape("right_linear", NAMES)) == 0

    def test_left_linear_full(self):
        # Every join with a join child swaps; the bottom two-leaf join
        # is symmetric and never does.
        assert orientation_gain(make_shape("left_linear", NAMES)) == 8

    def test_counts_partial(self):
        gain = orientation_gain(make_shape("wide_bushy", NAMES))
        assert 0 < gain < 9
