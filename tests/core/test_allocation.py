"""Integer processor allocation and the discretization error (Section 3.5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    allocate_ranges,
    assign_ranges,
    discretization_error,
    proportional_allocation,
)


class TestProportionalAllocation:
    def test_sums_to_processor_count(self):
        counts = proportional_allocation([1, 5, 3, 4], 10)
        assert sum(counts) == 10

    def test_proportionality(self):
        counts = proportional_allocation([1, 1, 2], 40)
        assert counts == [10, 10, 20]

    def test_minimum_respected(self):
        counts = proportional_allocation([0.001, 1000], 10)
        assert counts[0] >= 1

    def test_custom_minimum(self):
        counts = proportional_allocation([1, 1000], 10, minimum=3)
        assert counts[0] >= 3

    def test_example_tree_on_ten_processors(self):
        """The Figure 6/7 allocations: works 1,5,3,4 over 10 processors."""
        counts = proportional_allocation([1, 5, 3, 4], 10)
        assert counts == [1, 4, 2, 3]

    def test_candy_example(self):
        """'4 pieces of candy over 3 kids': one kid gets 2."""
        counts = proportional_allocation([1, 1, 1], 4)
        assert sorted(counts) == [1, 1, 2]

    def test_zero_weights_spread_evenly(self):
        assert proportional_allocation([0, 0], 6) == [3, 3]

    def test_not_enough_processors_rejected(self):
        with pytest.raises(ValueError, match="minimum"):
            proportional_allocation([1, 1, 1], 2)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            proportional_allocation([1, -1], 4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            proportional_allocation([], 4)

    def test_deterministic(self):
        weights = [3, 1, 4, 1, 5]
        assert proportional_allocation(weights, 17) == proportional_allocation(
            weights, 17
        )

    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=12),
        st.integers(1, 100),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_sum_and_floor(self, weights, extra):
        processors = len(weights) + extra
        counts = proportional_allocation(weights, processors)
        assert sum(counts) == processors
        assert all(c >= 1 for c in counts)

    @given(st.integers(1, 20), st.integers(1, 400))
    @settings(max_examples=60, deadline=None)
    def test_property_equal_weights_near_even(self, items, extra):
        processors = items + extra
        counts = proportional_allocation([1.0] * items, processors)
        assert max(counts) - min(counts) <= 1


class TestRanges:
    def test_assign_ranges_partition(self):
        ranges = assign_ranges([3, 2, 5])
        assert ranges == [(0, 1, 2), (3, 4), (5, 6, 7, 8, 9)]

    def test_assign_ranges_start_offset(self):
        assert assign_ranges([2], start=7) == [(7, 8)]

    def test_allocate_ranges_disjoint_cover(self):
        procs = tuple(range(20))
        ranges = allocate_ranges([1, 5, 3, 4], procs)
        flat = [p for r in ranges for p in r]
        assert flat == list(procs)

    def test_allocate_ranges_non_contiguous_input(self):
        procs = (2, 5, 9, 11)
        ranges = allocate_ranges([1, 1], procs)
        assert ranges == [(2, 5), (9, 11)]

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            assign_ranges([-1])


class TestDiscretizationError:
    def test_perfect_allocation(self):
        assert discretization_error([2, 2], [1, 1]) == pytest.approx(1.0)

    def test_candy_imbalance(self):
        # 3 equal kids, 4 candies: makespan 1 vs ideal 3/4.
        assert discretization_error([1, 1, 1], [2, 1, 1]) == pytest.approx(4 / 3)

    def test_unserved_work_is_infinite(self):
        assert discretization_error([1, 1], [2, 0]) == float("inf")

    def test_error_shrinks_with_processor_ratio(self):
        """Section 3.5: the error decreases with increasing ratio of
        processors to operations."""
        weights = [1, 5, 3, 4]
        small = discretization_error(weights, proportional_allocation(weights, 10))
        large = discretization_error(weights, proportional_allocation(weights, 160))
        assert large <= small

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            discretization_error([1], [1, 1])

    def test_zero_work(self):
        assert discretization_error([0, 0], [1, 1]) == 1.0
