"""The runner's cluster axis: sharded workload cells, cache-address
stability for unsharded cells, and cluster-row metrics."""

import pytest

from repro.runner import Job, WorkloadTraffic, run_sweep
from repro.sim import MachineConfig

FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)


def cluster_job(**traffic_overrides):
    traffic = dict(
        rate=0.3, duration=20.0, seed=7, shards=2, policy="exclusive",
        share=12,
    )
    traffic.update(traffic_overrides)
    return Job(
        "wide_bushy", "FP", 12, 400, config=FAST, scheduler="fifo",
        workload=WorkloadTraffic(**traffic),
    )


class TestPayloadStability:
    def test_unsharded_payload_carries_no_cluster_keys(self):
        """Cache-address preservation: at shards=1 the payload is
        byte-identical to the pre-cluster runner, so every existing
        cache entry stays valid."""
        job = Job(
            "wide_bushy", "FP", 12, 400, scheduler="fifo",
            workload=WorkloadTraffic(rate=0.3),
        )
        payload = job.payload()
        for key in ("shards", "placement", "autoscale", "scale_max"):
            assert key not in payload["workload"]

    def test_sharded_payload_carries_the_cluster_keys(self):
        payload = cluster_job().payload()
        assert payload["workload"]["shards"] == 2
        assert payload["workload"]["placement"] == "hash"
        assert payload["workload"]["autoscale"] == "static"

    def test_shard_counts_get_distinct_cache_keys(self):
        assert cluster_job().key() != cluster_job(shards=3).key()


class TestValidation:
    def test_bad_shards_rejected(self):
        with pytest.raises(ValueError, match="shard"):
            WorkloadTraffic(shards=0)

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError, match="placement"):
            WorkloadTraffic(shards=2, placement="zone_aware")

    def test_bad_autoscale_rejected(self):
        with pytest.raises(ValueError, match="autoscale"):
            WorkloadTraffic(shards=2, autoscale="oracle")

    def test_faults_and_shards_are_exclusive(self):
        from repro.faults import FaultSchedule

        with pytest.raises(ValueError, match="fault schedule"):
            Job(
                "wide_bushy", "FP", 12, 400, scheduler="fifo",
                faults=FaultSchedule(crashes=((1.0, 0),)),
                workload=WorkloadTraffic(shards=2),
            )


class TestClusterCells:
    def test_cluster_cell_metrics(self, tmp_path):
        run = run_sweep([cluster_job()], cache_dir=tmp_path, workers=1)
        [row] = run.rows()
        metrics = row["metrics"]
        assert metrics["shards"] == 2
        assert metrics["completed"] == metrics["submitted"]
        assert metrics["goodput"] > 0
        assert "scale_ups" in metrics

    def test_cluster_cell_caches_and_replays(self, tmp_path):
        first = run_sweep([cluster_job()], cache_dir=tmp_path, workers=1)
        second = run_sweep([cluster_job()], cache_dir=tmp_path, workers=1)
        assert second.outcomes[0].source == "cache"
        assert first.rows() == second.rows()
