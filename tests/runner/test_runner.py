"""The parallel sweep runner: spec expansion, content-addressed caching,
process fan-out, and bitwise-deterministic JSONL output."""

import json

import pytest

from repro.runner import (
    CACHE_VERSION,
    JobFailed,
    ResultCache,
    SweepSpec,
    default_workers,
    jsonl_line,
    read_jsonl,
    run_job,
    run_sweep,
    to_sweep_result,
)
from repro.sim import MachineConfig

#: Coarse batches: every job finishes in milliseconds.
FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)


def small_spec(**overrides):
    defaults = dict(
        shapes=("wide_bushy",),
        strategies=("SP", "SE"),
        processors=(8, 12),
        cardinalities=(400,),
        configs=(FAST,),
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


class TestSpec:
    def test_expansion_is_deterministic_and_ordered(self):
        spec = small_spec()
        jobs = spec.expand()
        assert jobs == spec.expand()
        assert len(jobs) == len(spec) == 4
        # Processors vary innermost, strategies next.
        assert [(j.strategy, j.processors) for j in jobs] == [
            ("SP", 8), ("SP", 12), ("SE", 8), ("SE", 12)
        ]

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown shape"):
            SweepSpec(shapes=("pear_shaped",))
        with pytest.raises(ValueError, match="unknown strategy"):
            SweepSpec(strategies=("XX",))
        with pytest.raises(ValueError, match="positive"):
            SweepSpec(processors=(0,))
        with pytest.raises(ValueError, match="empty"):
            SweepSpec(strategies=())

    def test_paper_spec_matches_figure_grids(self):
        small = SweepSpec.paper("left_linear", 5000)
        large = SweepSpec.paper("left_linear", 40000)
        assert small.processors == (20, 30, 40, 50, 60, 70, 80)
        assert large.processors == (30, 40, 50, 60, 70, 80)
        assert len(small) == 28

    def test_job_key_is_content_addressed(self):
        job = small_spec().expand()[0]
        twin = small_spec().expand()[0]
        assert job.key() == twin.key()
        other_config = small_spec(configs=(FAST.scaled(handshake=0.5),))
        assert other_config.expand()[0].key() != job.key()
        # The version tag participates in the key.
        canonical = json.dumps(
            {"v": CACHE_VERSION, **job.payload()},
            sort_keys=True, separators=(",", ":"),
        )
        import hashlib

        assert job.key() == hashlib.sha256(canonical.encode()).hexdigest()


class TestCache:
    def test_roundtrip_and_corruption(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = small_spec().expand()[0]
        row = {"hello": [1, 2.5, None], "inf": float("inf")}
        assert cache.get(job.key()) is None
        cache.put(job.key(), row)
        assert cache.get(job.key()) == row
        assert job.key() in cache
        assert len(cache) == 1
        # A corrupt entry reads as a miss, not an exception.
        (path,) = tmp_path.rglob(f"{job.key()}.json")
        path.write_text("{truncated")
        assert cache.get(job.key()) is None
        cache.clear()
        assert len(cache) == 0


class TestRunSweep:
    def test_parallel_equals_serial_bitwise(self, tmp_path):
        spec = small_spec()
        serial = run_sweep(
            spec, workers=1, cache_dir=tmp_path / "a", timeout=120
        )
        parallel = run_sweep(
            spec, workers=2, cache_dir=tmp_path / "b", timeout=120
        )
        assert serial.jsonl() == parallel.jsonl()
        assert parallel.workers == 2
        assert serial.cached_count() == 0

    def test_cache_hits_on_second_run(self, tmp_path):
        spec = small_spec()
        cold = run_sweep(spec, workers=2, cache_dir=tmp_path, timeout=120)
        warm = run_sweep(spec, workers=2, cache_dir=tmp_path, timeout=120)
        assert cold.computed_count() == len(spec)
        assert warm.cached_count() == len(spec)
        assert warm.computed_count() == 0
        assert cold.jsonl() == warm.jsonl()

    def test_rows_have_full_provenance_and_metrics(self, tmp_path):
        spec = small_spec(strategies=("SE",), processors=(8,))
        run = run_sweep(spec, cache_dir=tmp_path, timeout=120)
        (row,) = run.rows()
        assert row["strategy"] == "SE"
        assert row["config"]["batches"] == 8
        assert row["cost_model"]
        assert row["metrics"]["response_time"] > 0
        assert row["metrics"]["result_tuples"] == pytest.approx(400.0)
        # Wall-clock and pids stay on the outcome, never in the rows.
        assert "elapsed" not in row and "pid" not in row

    def test_progress_callback_sees_every_job(self, tmp_path):
        spec = small_spec()
        seen = []
        run_sweep(
            spec, cache_dir=tmp_path, timeout=120,
            progress=lambda outcome, done, total: seen.append((done, total)),
        )
        assert seen == [(i + 1, len(spec)) for i in range(len(spec))]

    def test_infeasible_job_raises_jobfailed(self, tmp_path):
        # FP cannot give 9 joins one processor each on a 4-node machine.
        spec = small_spec(strategies=("FP",), processors=(4,))
        with pytest.raises(JobFailed, match="FP@4p"):
            run_sweep(spec, cache_dir=tmp_path, timeout=120, retries=0)

    def test_no_cache_recomputes(self, tmp_path):
        spec = small_spec(strategies=("SP",), processors=(8,))
        run_sweep(spec, cache_dir=tmp_path, timeout=120)
        fresh = run_sweep(spec, cache=False, cache_dir=tmp_path, timeout=120)
        assert fresh.cached_count() == 0
        assert fresh.cache_dir is None

    def test_jsonl_roundtrip(self, tmp_path):
        spec = small_spec(strategies=("SP",), processors=(8,))
        run = run_sweep(spec, cache_dir=tmp_path, timeout=120)
        path = tmp_path / "out.jsonl"
        run.write_jsonl(path)
        assert read_jsonl(path) == run.rows()
        assert path.read_text() == "".join(
            jsonl_line(row) + "\n" for row in run.rows()
        )


class TestBridges:
    def test_to_sweep_result(self, tmp_path):
        from repro.bench import Experiment

        spec = small_spec()
        run = run_sweep(spec, cache_dir=tmp_path, timeout=120)
        sweep = to_sweep_result(
            run.rows(), Experiment("wide_bushy", 400, (8, 12))
        )
        assert set(sweep.series) == {"SP", "SE"}
        assert sweep.series["SP"].processor_counts == (8, 12)
        assert all(t > 0 for t in sweep.series["SE"].response_times)

    def test_run_job_matches_facade(self):
        from repro import api

        job = small_spec(strategies=("SE",), processors=(8,)).expand()[0]
        row, meta = run_job(job)
        direct = api.run(
            "wide_bushy", "SE", 8, config=FAST, cardinality=400
        )
        assert row["metrics"]["response_time"] == direct.response_time
        assert meta["pid"] > 0

    def test_default_workers_fans_out(self):
        assert default_workers(8) >= 2
        assert default_workers(1) == 1
        assert default_workers(0) == 1
