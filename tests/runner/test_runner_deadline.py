"""The deadline axis through the parallel sweep runner: cache-key
stability, grid expansion, deterministic aborted rows, worker-count
invariance."""

import pytest

from repro.runner import Job, SweepSpec, run_sweep


def tiny_spec(**kwargs):
    defaults = dict(
        shapes=("wide_bushy",),
        strategies=("SP", "FP"),
        processors=(12,),
        cardinalities=(500,),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


TIGHT = 0.05  # seconds — far below any 500-tuple wide_bushy response


class TestSpecAxis:
    def test_default_axis_is_deadline_free(self):
        spec = tiny_spec()
        assert spec.deadlines == (None,)
        assert all(job.deadline is None for job in spec.expand())

    def test_deadline_free_payload_has_no_deadline_key(self):
        """Cache compatibility: deadline-free jobs must keep their
        pre-deadline-axis content addresses."""
        job = Job(
            shape="wide_bushy", strategy="FP", processors=12,
            cardinality=500,
        )
        assert "deadline" not in job.payload()
        bounded = Job(
            shape="wide_bushy", strategy="FP", processors=12,
            cardinality=500, deadline=10.0,
        )
        assert bounded.payload()["deadline"] == 10.0
        assert bounded.key() != job.key()

    def test_axis_multiplies_the_grid(self):
        spec = tiny_spec(deadlines=(None, 10.0))
        assert len(spec) == 4
        jobs = spec.expand()
        assert len(jobs) == 4
        assert [(job.strategy, job.deadline) for job in jobs] == [
            ("SP", None), ("FP", None), ("SP", 10.0), ("FP", 10.0)
        ]

    def test_axis_validates_entries(self):
        with pytest.raises(ValueError, match="positive or None"):
            tiny_spec(deadlines=(0.0,))
        with pytest.raises(ValueError, match="positive or None"):
            tiny_spec(deadlines=(-5.0,))
        with pytest.raises(ValueError, match="empty"):
            tiny_spec(deadlines=())

    def test_job_validates_deadline(self):
        with pytest.raises(ValueError, match="positive"):
            Job(shape="wide_bushy", strategy="FP", processors=12,
                cardinality=500, deadline=0.0)

    def test_label_mentions_deadline(self):
        job = Job(
            shape="wide_bushy", strategy="FP", processors=12,
            cardinality=500, deadline=2.5,
        )
        assert "deadline=2.5s" in job.label()


class TestExecution:
    def test_deadline_aborted_jobs_produce_deterministic_rows(self):
        spec = tiny_spec(deadlines=(TIGHT,))
        run = run_sweep(spec, workers=1, cache=False)
        for outcome in run.outcomes:
            metrics = outcome.row["metrics"]
            assert metrics["aborted"] is True
            assert metrics["aborted_at"] == TIGHT
            assert metrics["reason"] == "deadline"

    def test_rows_are_worker_count_invariant(self):
        """Acceptance: the same deadlined spec produces identical rows
        at workers=1 and workers=4."""
        spec = tiny_spec(deadlines=(None, TIGHT))
        serial = run_sweep(spec, workers=1, cache=False)
        parallel = run_sweep(spec, workers=4, cache=False)
        assert [o.row for o in serial.outcomes] == [
            o.row for o in parallel.outcomes
        ]

    def test_deadline_rows_cache_and_replay(self, tmp_path):
        spec = tiny_spec(strategies=("FP",), deadlines=(TIGHT,))
        first = run_sweep(spec, workers=1, cache_dir=tmp_path)
        second = run_sweep(spec, workers=1, cache_dir=tmp_path)
        assert [o.source for o in second.outcomes] == ["cache"]
        assert [o.row for o in first.outcomes] == [
            o.row for o in second.outcomes
        ]

    def test_generous_deadline_leaves_metrics_untouched(self):
        """A deadline the query beats yields the normal metrics row
        (plus the payload's deadline key)."""
        plain = run_sweep(
            tiny_spec(strategies=("FP",)), workers=1, cache=False
        )
        bounded = run_sweep(
            tiny_spec(strategies=("FP",), deadlines=(1e6,)),
            workers=1, cache=False,
        )
        assert (
            bounded.outcomes[0].row["metrics"]["response_time"]
            == plain.outcomes[0].row["metrics"]["response_time"]
        )
