"""The runner's scheduler axis: workload-mode sweep cells, cache-key
stability for classic cells, and deterministic JSONL under fan-out."""

import pytest

from repro.runner import Job, SweepSpec, WorkloadTraffic, run_sweep
from repro.sim import MachineConfig

FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)


def workload_spec(**kwargs):
    defaults = dict(
        shapes=("wide_bushy",),
        strategies=("FP",),
        processors=(12,),
        cardinalities=(400,),
        configs=(FAST,),
        schedulers=("fifo", "wfq"),
        workload=WorkloadTraffic(rate=0.3, duration=20.0, seed=7),
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestSchedulerAxis:
    def test_pinned_cache_keys_unchanged(self):
        """Pre-scheduler cells keep their content addresses: the new
        payload keys appear only when a scheduler is set, so every
        existing cache entry stays valid."""
        assert Job("wide_bushy", "FP", 40, 5_000).key() == (
            "ea60f30754a8ceda3e747417010a2a6afa41438c74da13154cce097f42ea8878"
        )
        assert Job(
            "left_linear", "SE", 20, 2_000, skew_theta=0.7
        ).key() == (
            "d9728d43b21c50bcb0c0bb05a9a3d9b2d207ad92e1b6adf01144185fb5a67746"
        )

    def test_payload_carries_scheduler_only_when_set(self):
        classic = Job("wide_bushy", "FP", 40, 5_000)
        assert "scheduler" not in classic.payload()
        assert "workload" not in classic.payload()
        cell = Job("wide_bushy", "FP", 40, 400, scheduler="wfq")
        payload = cell.payload()
        assert payload["scheduler"] == "wfq"
        assert payload["workload"]["rate"] == WorkloadTraffic().rate
        assert "sched=wfq" in cell.label()

    def test_expansion_order_and_len(self):
        spec = workload_spec(schedulers=(None, "fifo", "edf"))
        jobs = spec.expand()
        assert len(jobs) == len(spec) == 3
        assert [job.scheduler for job in jobs] == [None, "fifo", "edf"]
        assert jobs[0].workload is None
        assert jobs[1].workload == spec.workload

    def test_distinct_schedulers_get_distinct_keys(self):
        spec = workload_spec()
        keys = {job.key() for job in spec.expand()}
        assert len(keys) == 2

    def test_job_validation(self):
        with pytest.raises(ValueError, match="unknown scheduler"):
            Job("wide_bushy", "FP", 40, 400, scheduler="lifo")
        with pytest.raises(ValueError, match="needs a scheduler"):
            Job("wide_bushy", "FP", 40, 400, workload=WorkloadTraffic())
        with pytest.raises(ValueError, match="unknown scheduler"):
            SweepSpec(schedulers=("lifo",))
        with pytest.raises(ValueError, match="at least one scheduler"):
            SweepSpec(workload=WorkloadTraffic())

    def test_traffic_validation(self):
        with pytest.raises(ValueError, match="rate"):
            WorkloadTraffic(rate=0.0)
        with pytest.raises(ValueError, match="duration"):
            WorkloadTraffic(duration=0.0)
        with pytest.raises(ValueError, match="pool_size"):
            WorkloadTraffic(pool_size=0)
        with pytest.raises(ValueError, match="scheduling_cost"):
            WorkloadTraffic(scheduling_cost=-0.1)


class TestWorkloadCells:
    def test_workload_cell_metrics(self, tmp_path):
        run = run_sweep(
            workload_spec(schedulers=("fifo",)), cache_dir=tmp_path
        )
        (row,) = run.rows()
        metrics = row["metrics"]
        assert metrics["submitted"] > 0
        assert metrics["completed"] > 0
        assert metrics["makespan"] > 0
        assert metrics["scheduling_decisions"] >= metrics["completed"]
        assert row["scheduler"] == "fifo"
        assert {"goodput", "latency_p50", "latency_p95"} <= set(metrics)

    def test_workers_do_not_change_the_rows(self, tmp_path):
        spec = workload_spec()
        serial = run_sweep(spec, workers=1, cache=False)
        pooled = run_sweep(spec, workers=2, cache=False)
        assert serial.rows() == pooled.rows()

    def test_cache_replays_workload_cells(self, tmp_path):
        spec = workload_spec(schedulers=("wfq",))
        first = run_sweep(spec, cache_dir=tmp_path)
        second = run_sweep(spec, cache_dir=tmp_path)
        assert second.outcomes[0].source == "cache"
        assert first.rows() == second.rows()
