"""Ports and consumer groups (the tuple-stream plumbing)."""

import pytest

from repro.sim import Port, SimulationClock
from repro.sim.streams import ConsumerGroup


def port(mode="pipelined", producers=2, total=100.0):
    return Port(
        side="left",
        mode=mode,
        coefficient=2.0,
        expected_producers=producers,
        local_total=total,
    )


class TestPort:
    def test_receive_accumulates(self):
        p = port()
        p.receive(10.0, 0, now=1.0)
        p.receive(5.0, 0, now=2.0)
        assert p.pending == 15.0
        assert p.first_arrival == 1.0

    def test_closed_after_all_eos(self):
        p = port(producers=2)
        assert not p.stream_closed
        p.receive(0.0, 1, now=0.0)
        assert not p.stream_closed
        p.receive(0.0, 1, now=0.0)
        assert p.stream_closed

    def test_drained_requires_closed_and_empty(self):
        p = port(producers=1)
        p.receive(10.0, 1, now=0.0)
        assert p.stream_closed and not p.drained
        p.take(100.0)
        assert p.drained

    def test_base_ports_always_closed(self):
        p = port(mode="base", producers=0)
        assert p.stream_closed

    def test_too_many_eos_rejected(self):
        p = port(producers=1)
        p.receive(0.0, 1, now=0.0)
        with pytest.raises(RuntimeError, match="EOS"):
            p.receive(0.0, 1, now=0.0)

    def test_take_caps(self):
        p = port()
        p.receive(10.0, 0, now=0.0)
        assert p.take(4.0) == 4.0
        assert p.pending == 6.0
        assert p.take(100.0) == 6.0
        assert p.pending == 0.0

    def test_negative_batch_rejected(self):
        with pytest.raises(ValueError):
            port().receive(-1.0, 0, now=0.0)

    def test_chunk_cap(self):
        p = port(total=64.0)
        assert p.chunk_cap(batches=8) == 8.0

    def test_chunk_cap_zero_total(self):
        p = port(total=0.0)
        assert p.chunk_cap(batches=8) == float("inf")


class TestConsumerGroup:
    def test_deliver_splits_evenly(self):
        clock = SimulationClock()
        ports = [port(producers=1) for _ in range(4)]
        group = ConsumerGroup(ports, latency=0.5)
        group.deliver(clock, 100.0)
        clock.run()
        assert all(p.pending == 25.0 for p in ports)
        assert all(p.first_arrival == 0.5 for p in ports)

    def test_deliver_eos_reaches_all(self):
        clock = SimulationClock()
        ports = [port(producers=1) for _ in range(3)]
        group = ConsumerGroup(ports, latency=0.0)
        group.deliver_eos(clock)
        clock.run()
        assert all(p.stream_closed for p in ports)

    def test_deliver_store_combines_data_and_eos(self):
        clock = SimulationClock()
        ports = [port(producers=5) for _ in range(2)]
        group = ConsumerGroup(ports, latency=1.0)
        group.deliver_store(clock, 100.0, producers=5)
        clock.run()
        assert all(p.pending == 50.0 for p in ports)
        assert all(p.stream_closed for p in ports)

    def test_zero_delivery_is_noop(self):
        clock = SimulationClock()
        group = ConsumerGroup([port()], latency=0.0)
        group.deliver(clock, 0.0)
        assert clock.pending() == 0

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            ConsumerGroup([], latency=0.0)
