"""Per-query deadlines in simulated time."""

import pytest

from repro import api
from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.sim import MachineConfig, QueryAbortedError, simulate

NAMES = paper_relation_names(6)
CATALOG = Catalog.regular(NAMES, 600)
FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)


def schedule_for(strategy="FP", shape="wide_bushy", processors=8):
    tree = make_shape(shape, NAMES)
    return get_strategy(strategy).schedule(tree, CATALOG, processors)


class TestSimulateDeadline:
    def test_tight_deadline_aborts_with_reason(self):
        schedule = schedule_for()
        baseline = simulate(schedule_for(), CATALOG, FAST)
        with pytest.raises(QueryAbortedError) as excinfo:
            simulate(schedule, CATALOG, FAST,
                     deadline=baseline.response_time / 2)
        assert excinfo.value.reason == "deadline"
        assert excinfo.value.at == pytest.approx(baseline.response_time / 2)
        assert "deadline" in str(excinfo.value)

    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    def test_met_deadline_is_bit_for_bit_invisible(self, strategy):
        """A deadline the query beats — and deadline=None — leave the
        run identical to a deadline-free one, event count included."""
        plain = simulate(schedule_for(strategy), CATALOG, FAST)
        explicit_none = simulate(
            schedule_for(strategy), CATALOG, FAST, deadline=None
        )
        generous = simulate(
            schedule_for(strategy), CATALOG, FAST,
            deadline=plain.response_time * 10,
        )
        for other in (explicit_none, generous):
            assert other.response_time == plain.response_time
            assert other.events == plain.events
            assert other.intervals == plain.intervals
            assert other.task_timings == plain.task_timings

    def test_deadline_exactly_at_completion_aborts(self):
        """Tie-break semantics: the deadline event is scheduled at
        construction, so at an exact tie it dispatches before the
        same-instant completion events — a query must finish strictly
        before its deadline."""
        plain = simulate(schedule_for(), CATALOG, FAST)
        with pytest.raises(QueryAbortedError):
            simulate(
                schedule_for(), CATALOG, FAST, deadline=plain.response_time
            )

    def test_non_positive_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline"):
            simulate(schedule_for(), CATALOG, FAST, deadline=0.0)
        with pytest.raises(ValueError, match="deadline"):
            simulate(schedule_for(), CATALOG, FAST, deadline=-1.0)


class TestApiDeadline:
    def test_run_threads_deadline_to_sim(self):
        with pytest.raises(QueryAbortedError) as excinfo:
            api.run("wide_bushy", "FP", 12, "sim",
                    cardinality=600, config=FAST, deadline=0.001)
        assert excinfo.value.reason == "deadline"

    def test_run_generous_deadline_identical(self):
        plain = api.run("wide_bushy", "FP", 12, "sim",
                        cardinality=600, config=FAST)
        bounded = api.run("wide_bushy", "FP", 12, "sim",
                          cardinality=600, config=FAST, deadline=1e9)
        assert bounded.response_time == plain.response_time
        assert bounded.events == plain.events

    @pytest.mark.parametrize("backend", ["local", "threaded"])
    def test_real_data_backends_reject_deadline(self, backend):
        """Simulated-time deadlines are meaningless against wall-clock
        execution; asking for one is an error, not a silent ignore."""
        with pytest.raises(ValueError, match="deadline"):
            api.run("left_linear", "SP", 4, backend,
                    cardinality=50, deadline=5.0)
