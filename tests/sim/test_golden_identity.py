"""Golden-equivalence: the fast paths reproduce the seed byte for byte.

The fixtures under ``tests/golden/`` were emitted by the pre-fast-path
simulator (before the analytic engine of :mod:`repro.sim.turbo` and
the tightened event loop existed).  These tests re-run the same three
workloads — the pinned runner sweep, open-loop and closed-loop shared
workloads — and require the JSONL output to be *byte-identical*: same
response times (every float digit), same logical event counts, same
row order.  Performance work is only allowed to change how fast the
answer appears, never the answer.

Regenerate deliberately with ``tests/golden/generate_fixtures.py``
after a documented semantics change.
"""

import importlib.util
import pathlib

import pytest

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent.parent / "golden"


@pytest.fixture(scope="module")
def generators():
    """The fixture-generator module, loaded from its file."""
    spec = importlib.util.spec_from_file_location(
        "golden_fixture_generators", GOLDEN_DIR / "generate_fixtures.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def fixture_bytes(name: str) -> bytes:
    path = GOLDEN_DIR / f"{name}.jsonl"
    data = path.read_bytes()
    assert data, f"golden fixture {path} is missing or empty"
    return data


def test_runner_sweep_identical(generators, tmp_path):
    from repro.runner.results import write_jsonl

    out = tmp_path / "runner_sweep.jsonl"
    write_jsonl(out, generators.sweep_rows())
    assert out.read_bytes() == fixture_bytes("runner_sweep")


def test_workload_open_identical(generators, tmp_path):
    out = tmp_path / "workload_open.jsonl"
    generators.workload_open().write_jsonl(out)
    assert out.read_bytes() == fixture_bytes("workload_open")


def test_workload_closed_identical(generators, tmp_path):
    out = tmp_path / "workload_closed.jsonl"
    generators.workload_closed().write_jsonl(out)
    assert out.read_bytes() == fixture_bytes("workload_closed")


class TestHostedFastPathIdentity:
    """The turbo-v2 hosted single-occupancy fast path is on by default,
    so the plain golden tests above already pin it against the
    pre-fast-path fixtures; these prove the *off* switch is equally
    byte-identical — the fast path must be pure performance in both
    directions."""

    def test_workload_open_fast_path_off_identical(self, generators, tmp_path):
        out = tmp_path / "workload_open_classic.jsonl"
        generators.workload_open(fast_path=False).write_jsonl(out)
        assert out.read_bytes() == fixture_bytes("workload_open")

    def test_workload_closed_fast_path_off_identical(
        self, generators, tmp_path
    ):
        out = tmp_path / "workload_closed_classic.jsonl"
        generators.workload_closed(fast_path=False).write_jsonl(out)
        assert out.read_bytes() == fixture_bytes("workload_closed")


class TestFifoSchedulerIdentity:
    """``scheduler="fifo"`` must be a byte-identical alias of the
    legacy (scheduler-free) admission queue on the pinned pre-scheduler
    fixtures: same rows, same floats, same order."""

    def test_workload_open_fifo_identical(self, generators, tmp_path):
        out = tmp_path / "workload_open_fifo.jsonl"
        generators.workload_open(scheduler="fifo").write_jsonl(out)
        assert out.read_bytes() == fixture_bytes("workload_open")

    def test_workload_closed_fifo_identical(self, generators, tmp_path):
        out = tmp_path / "workload_closed_fifo.jsonl"
        generators.workload_closed(scheduler="fifo").write_jsonl(out)
        assert out.read_bytes() == fixture_bytes("workload_closed")
