"""Machine configuration and processor model."""

import pytest

from repro.sim import MachineConfig, Processor


class TestMachineConfig:
    def test_paper_config_is_frozen_and_valid(self):
        config = MachineConfig.paper()
        assert config.tuple_unit > 0
        assert config.process_startup > 0
        assert config.handshake > 0
        assert config.batches >= 1

    def test_ideal_config_zero_overhead(self):
        config = MachineConfig.ideal()
        assert config.process_startup == 0
        assert config.handshake == 0
        assert config.network_latency == 0
        assert config.tuple_unit == 1.0

    def test_scaled_override(self):
        config = MachineConfig.paper().scaled(handshake=0.5)
        assert config.handshake == 0.5
        assert config.tuple_unit == MachineConfig.paper().tuple_unit

    def test_negative_constants_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(tuple_unit=-1)
        with pytest.raises(ValueError):
            MachineConfig(network_latency=-1)

    def test_zero_batches_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(batches=0)


class TestProcessor:
    def test_acquire_serializes(self):
        proc = Processor(0)
        end1 = proc.acquire(0.0, 2.0, "a")
        end2 = proc.acquire(1.0, 3.0, "b")  # requested while busy
        assert end1 == 2.0
        assert end2 == 5.0  # queued behind the first chunk

    def test_idle_gap(self):
        proc = Processor(0)
        proc.acquire(0.0, 1.0, "a")
        end = proc.acquire(5.0, 1.0, "b")
        assert end == 6.0
        assert proc.busy_time() == 2.0

    def test_interval_labels(self):
        proc = Processor(0)
        proc.acquire(0.0, 1.0, "a")
        proc.acquire(0.0, 2.0, "b")
        assert proc.busy_time_for("a") == 1.0
        assert proc.busy_time_for("b") == 2.0

    def test_adjacent_same_label_merged(self):
        proc = Processor(0)
        proc.acquire(0.0, 1.0, "a")
        proc.acquire(1.0, 1.0, "a")
        assert len(proc.intervals) == 1
        assert proc.intervals[0] == (0.0, 2.0, "a")

    def test_zero_duration_not_recorded(self):
        proc = Processor(0)
        proc.acquire(0.0, 0.0, "a")
        assert proc.intervals == []

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Processor(0).acquire(0.0, -1.0, "a")
