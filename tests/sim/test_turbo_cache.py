"""Cache-correctness properties of the turbo-v2 profile cache.

The profile cache replays a captured timing profile for a repeated
``(tree, strategy, processors, config, skew)`` spec.  The one disaster
mode of such a cache is *cross-key contamination*: serving a memoized
profile for the wrong spec.  These tests interleave runs of deliberately
near-identical specs — differing in exactly one key dimension — against
a warm shared cache and require every result to equal a fresh-cache
(cold) run of the same spec, bit for bit.
"""

import pytest

from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.sim import MachineConfig
from repro.sim.run import ScheduleSimulation
from repro.sim import turbo


def run_spec(
    shape="wide_bushy",
    strategy="FP",
    processors=8,
    skew=0.0,
    cardinality=300,
    relations=6,
    config=None,
):
    names = paper_relation_names(relations)
    tree = make_shape(shape, names)
    catalog = Catalog.regular(names, cardinality)
    schedule = get_strategy(strategy).schedule(tree, catalog, processors)
    sim = ScheduleSimulation(
        schedule, catalog, config or MachineConfig.paper(), None, skew
    )
    assert turbo.execute(sim)
    return sim.result()


def observables(result):
    return (
        result.response_time,
        result.events,
        result.result_tuples,
        result.operation_processes,
        result.stream_count,
        tuple(result.task_timings),
        tuple(sorted((k, tuple(v)) for k, v in result.intervals.items())),
    )


#: Near-identical spec variants: each differs from the base in exactly
#: one dimension that MUST be part of the cache key.
VARIANTS = {
    "base": dict(),
    "cardinality": dict(cardinality=301),
    "skew": dict(skew=0.3),
    "processors": dict(processors=9),
    "strategy": dict(strategy="SE"),
    "shape": dict(shape="left_linear"),
    "config": dict(config=MachineConfig.paper().scaled(tuple_unit=2.0)),
}


@pytest.fixture(scope="module")
def cold_results():
    """Reference result per variant, each from a completely cold cache."""
    reference = {}
    for name, overrides in VARIANTS.items():
        turbo.clear_cache()
        reference[name] = observables(run_spec(**overrides))
    turbo.clear_cache()
    return reference


def test_every_variant_is_distinguishable(cold_results):
    """Sanity: the variants genuinely produce different answers, so a
    cross-key cache hit could not hide behind identical results."""
    seen = {}
    for name, obs in cold_results.items():
        for other, prior in seen.items():
            assert obs != prior, f"{name} and {other} are indistinguishable"
        seen[name] = obs


def test_interleaved_specs_never_cross_keys(cold_results):
    """Two interleaved passes over every variant against one warm
    cache: every repeat must serve its *own* profile."""
    turbo.clear_cache()
    for round_number in range(2):
        for name, overrides in VARIANTS.items():
            assert observables(run_spec(**overrides)) == cold_results[name], (
                f"variant {name!r} diverged on round {round_number} — "
                "the profile cache served a wrong or stale entry"
            )
    stats = turbo.cache_stats()
    assert stats["profile_misses"] == len(VARIANTS)
    assert stats["profile_hits"] == len(VARIANTS)


def test_cold_vs_warm_identical(cold_results):
    """A warm replay is the captured compute, so it cannot drift."""
    turbo.clear_cache()
    cold = observables(run_spec())
    warm = observables(run_spec())
    assert turbo.cache_stats()["profile_hits"] == 1
    assert cold == warm == cold_results["base"]


def test_eviction_recomputes_not_corrupts(monkeypatch, cold_results):
    """With a cache capped at one entry, every variant evicts the
    previous one; evicted specs must recompute to the same answer."""
    monkeypatch.setattr(turbo, "_PROFILE_CACHE_MAX", 1)
    turbo.clear_cache()
    for _ in range(2):
        for name, overrides in VARIANTS.items():
            assert observables(run_spec(**overrides)) == cold_results[name]
            assert turbo.cache_stats()["profile_entries"] <= 1
    # Everything was evicted before its repeat: all misses, no hits.
    assert turbo.cache_stats()["profile_hits"] == 0


def test_structure_version_is_part_of_the_key():
    """Bumping STRUCTURE_VERSION must orphan old entries (the guard
    that makes chunk-policy changes in sim/process.py safe)."""
    turbo.clear_cache()
    run_spec()
    monkeypatch_version = turbo.STRUCTURE_VERSION + 1
    try:
        turbo.STRUCTURE_VERSION = monkeypatch_version
        run_spec()
        assert turbo.cache_stats()["profile_hits"] == 0
        assert turbo.cache_stats()["profile_misses"] == 2
    finally:
        turbo.STRUCTURE_VERSION = monkeypatch_version - 1
        turbo.clear_cache()
