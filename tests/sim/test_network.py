"""The shared-interconnect model (extension A8)."""

import pytest

from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.sim import MachineConfig
from repro.sim.machine import NetworkLink
from repro.sim.run import simulate

NAMES = paper_relation_names(4)
CATALOG = Catalog.regular(NAMES, 400)


class TestNetworkLink:
    def test_infinite_bandwidth_is_free(self):
        link = NetworkLink(float("inf"))
        assert link.transfer(5.0, 1000.0) == 5.0
        assert link.busy_until == 0.0

    def test_finite_bandwidth_serializes(self):
        link = NetworkLink(100.0)
        first = link.transfer(0.0, 200.0)   # 2s transfer
        second = link.transfer(1.0, 100.0)  # queues behind the first
        assert first == 2.0
        assert second == 3.0

    def test_transferred_accounting(self):
        link = NetworkLink(10.0)
        link.transfer(0.0, 30.0)
        link.transfer(0.0, 20.0)
        assert link.transferred == 50.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            NetworkLink(0.0)
        with pytest.raises(ValueError):
            NetworkLink(10.0).transfer(0.0, -1.0)


class TestContention:
    def run(self, strategy, bandwidth, fast_config):
        config = fast_config.scaled(network_bandwidth=bandwidth)
        tree = make_shape("right_linear", NAMES)
        schedule = get_strategy(strategy).schedule(tree, CATALOG, 6)
        return simulate(schedule, CATALOG, config)

    def test_conservation_under_contention(self, fast_config):
        for strategy in ("SP", "SE", "RD", "FP"):
            result = self.run(strategy, 500.0, fast_config)
            assert result.result_tuples == pytest.approx(400.0, rel=1e-6)

    def test_slow_link_slows_response(self, fast_config):
        fast = self.run("FP", float("inf"), fast_config)
        slow = self.run("FP", 200.0, fast_config)
        assert slow.response_time > fast.response_time * 1.5

    def test_fast_link_matches_infinite(self, fast_config):
        infinite = self.run("SP", float("inf"), fast_config)
        fast = self.run("SP", 1e9, fast_config)
        assert fast.response_time == pytest.approx(
            infinite.response_time, rel=1e-6
        )

    def test_eos_never_overtakes_data(self, fast_config):
        """Pipelined consumers must not finish while data is queued on
        the link (the conservation failure mode)."""
        config = fast_config.scaled(network_bandwidth=50.0)
        tree = make_shape("right_bushy", NAMES)
        schedule = get_strategy("FP").schedule(tree, CATALOG, 4)
        result = simulate(schedule, CATALOG, config)
        assert result.result_tuples == pytest.approx(400.0, rel=1e-6)

    def test_rejected_bandwidth(self):
        with pytest.raises(ValueError):
            MachineConfig(network_bandwidth=0.0)
