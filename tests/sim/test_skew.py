"""Skew modeling (relaxing the paper's non-skew assumption)."""

import pytest

from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.sim import MachineConfig
from repro.sim.run import simulate
from repro.sim.skew import skew_factor, zipf_shares

NAMES = paper_relation_names(6)
CATALOG = Catalog.regular(NAMES, 600)


def run(strategy, theta, config):
    tree = make_shape("wide_bushy", NAMES)
    schedule = get_strategy(strategy).schedule(tree, CATALOG, 12)
    return simulate(schedule, CATALOG, config, skew_theta=theta)


class TestZipfShares:
    def test_uniform_at_zero(self):
        shares = zipf_shares(5, 0.0)
        assert shares == pytest.approx([0.2] * 5)
        assert skew_factor(shares) == pytest.approx(1.0)

    def test_sums_to_one(self):
        for theta in (0.0, 0.5, 1.0, 2.0):
            assert sum(zipf_shares(7, theta)) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        shares = zipf_shares(6, 1.0)
        assert shares == sorted(shares, reverse=True)

    def test_skew_factor_grows_with_theta(self):
        assert (
            skew_factor(zipf_shares(8, 0.0))
            < skew_factor(zipf_shares(8, 0.5))
            < skew_factor(zipf_shares(8, 1.0))
        )

    def test_single_fragment(self):
        assert zipf_shares(1, 1.0) == [1.0]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_shares(0, 1.0)
        with pytest.raises(ValueError):
            zipf_shares(3, -0.1)


class TestSkewedSimulation:
    def test_zero_theta_matches_default(self, fast_config):
        assert run("SP", 0.0, fast_config).response_time == pytest.approx(
            run("SP", 0.0, fast_config).response_time
        )

    def test_result_tuples_conserved_under_skew(self, fast_config):
        for strategy in ("SP", "SE", "RD", "FP"):
            result = run(strategy, 1.0, fast_config)
            assert result.result_tuples == pytest.approx(600.0, rel=1e-6)

    def test_skew_slows_everything(self, fast_config):
        for strategy in ("SP", "FP"):
            uniform = run(strategy, 0.0, fast_config).response_time
            skewed = run(strategy, 1.0, fast_config).response_time
            assert skewed > uniform

    def test_skew_destroys_sp_perfect_balance(self):
        """Section 3.5's SP argument is explicitly conditioned on
        non-skewed partitioning; under Zipf(1) the largest fragment
        dominates the makespan."""
        config = MachineConfig.ideal(batches=8)
        tree = make_shape("left_linear", NAMES)
        schedule = get_strategy("SP").schedule(tree, CATALOG, 12)
        uniform = simulate(schedule, CATALOG, config, skew_theta=0.0)
        skewed = simulate(schedule, CATALOG, config, skew_theta=1.0)
        assert uniform.utilization() > 0.98
        assert skewed.utilization() < 0.75
        largest_share = max(zipf_shares(12, 1.0))
        expected_ratio = largest_share * 12
        assert skewed.response_time / uniform.response_time == pytest.approx(
            expected_ratio, rel=0.15
        )
