"""End-to-end schedule simulations."""

import pytest

from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.sim import MachineConfig, simulate

NAMES = paper_relation_names(6)
CATALOG = Catalog.regular(NAMES, 600)


def run(strategy, shape, processors=8, config=None, catalog=CATALOG):
    tree = make_shape(shape, NAMES)
    schedule = get_strategy(strategy).schedule(tree, catalog, processors)
    return simulate(schedule, catalog, config or MachineConfig.paper())


class TestConservation:
    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    @pytest.mark.parametrize("shape", ["left_linear", "wide_bushy", "right_bushy"])
    def test_result_tuples_conserved(self, strategy, shape):
        """The fluid flow must deliver exactly the query's result
        cardinality at the root, for every strategy and shape."""
        result = run(strategy, shape)
        assert result.result_tuples == pytest.approx(600.0, rel=1e-6)

    def test_total_work_matches_cost_model(self):
        """With zero overhead, total CPU-busy time equals the paper's
        total cost (44n units for the 6-relation query: 6+2*4+2*5=24n)."""
        config = MachineConfig.ideal(batches=8)
        result = run("SP", "left_linear", config=config)
        expected_units = (6 + 2 * 4 + 2 * 5) * 600  # 10 operands? no: 6 base + 4 intermediate + 5 results
        assert result.busy_time() == pytest.approx(expected_units, rel=1e-6)


class TestResponseTimes:
    def test_response_positive_and_bounded(self):
        result = run("FP", "wide_bushy")
        ideal = result.busy_time() / result.processors
        assert result.response_time >= ideal * 0.99
        assert result.response_time < ideal * 20

    def test_startup_counted(self):
        """Response includes the serial scheduler initialization."""
        config = MachineConfig.ideal(batches=4).scaled(process_startup=1.0)
        result = run("SP", "left_linear", processors=8, config=config)
        # 5 joins × 8 processors = 40 processes; last ready at t=40.
        assert result.response_time >= 40.0

    def test_more_processors_less_compute_time(self):
        config = MachineConfig(
            tuple_unit=0.001, process_startup=0.0, handshake=0.0,
            network_latency=0.0, batches=8,
        )
        small = run("SP", "wide_bushy", processors=4, config=config)
        large = run("SP", "wide_bushy", processors=16, config=config)
        assert large.response_time < small.response_time


class TestBarriers:
    def test_sp_tasks_sequential(self):
        result = run("SP", "wide_bushy")
        completions = [t.completion for t in result.task_timings]
        releases = [t.released for t in result.task_timings]
        for i in range(1, len(completions)):
            assert releases[i] == pytest.approx(completions[i - 1])

    def test_fp_tasks_all_released_at_start(self):
        result = run("FP", "wide_bushy")
        assert all(t.released == 0.0 for t in result.task_timings)

    def test_se_parent_after_children(self):
        result = run("SE", "wide_bushy")
        timings = {t.index: t for t in result.task_timings}
        tree_tasks = {i: t for i, t in enumerate(result.task_timings)}
        # Root is the last task; its release equals the max of its
        # children's completions.
        root = result.task_timings[-1]
        assert root.released > 0.0


class TestDegenerations:
    def test_sp_se_rd_identical_on_left_linear(self):
        results = {s: run(s, "left_linear") for s in ("SP", "SE", "RD")}
        times = [r.response_time for r in results.values()]
        assert max(times) - min(times) < 1e-9

    def test_rd_close_to_fp_on_right_linear(self):
        rd = run("RD", "right_linear", processors=12)
        fp = run("FP", "right_linear", processors=12)
        assert rd.response_time == pytest.approx(fp.response_time, rel=0.35)


class TestDeterminism:
    def test_identical_runs(self):
        a = run("FP", "right_bushy")
        b = run("FP", "right_bushy")
        assert a.response_time == b.response_time
        assert a.events == b.events
        assert a.intervals == b.intervals


class TestMetricsSurface:
    def test_summary_mentions_strategy(self):
        result = run("RD", "right_bushy")
        assert "RD" in result.summary()
        assert "response" in result.summary()

    def test_utilization_in_unit_range(self):
        result = run("SE", "wide_bushy")
        assert 0.0 < result.utilization() <= 1.0

    def test_busy_by_kind_sums_to_busy_time(self):
        result = run("SP", "left_linear")
        kinds = result.busy_by_kind()
        assert kinds["work"] + kinds["handshake"] == pytest.approx(result.busy_time())

    def test_counts_match_schedule(self):
        result = run("SP", "left_linear", processors=8)
        assert result.operation_processes == 5 * 8
        assert result.stream_count == 4 * 64

    def test_work_scale_example_tree(self):
        """The Figure 2 work labels are honoured exactly."""
        from repro.core import example_tree

        tree = example_tree()
        catalog = Catalog.regular(["A", "B", "C", "D", "E"], 100)
        schedule = get_strategy("SP").schedule(tree, catalog, 2)
        result = simulate(schedule, catalog, MachineConfig.ideal(batches=4))
        assert result.busy_time() == pytest.approx(1 + 5 + 3 + 4)
