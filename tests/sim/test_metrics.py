"""SimulationResult surface: timings, breakdowns, summaries."""

import pytest

from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.sim.run import simulate

NAMES = paper_relation_names(6)
CATALOG = Catalog.regular(NAMES, 600)


@pytest.fixture(scope="module")
def result(fast_config):
    tree = make_shape("wide_bushy", NAMES)
    schedule = get_strategy("SE").schedule(tree, CATALOG, 8)
    return simulate(schedule, CATALOG, fast_config)


class TestTimings:
    def test_task_completion_lookup(self, result):
        for timing in result.task_timings:
            assert result.task_completion(timing.index) == timing.completion

    def test_first_work_after_release(self, result):
        for timing in result.task_timings:
            if timing.first_work is not None:
                assert timing.first_work >= timing.released

    def test_response_is_last_completion(self, result):
        assert result.response_time == max(
            t.completion for t in result.task_timings
        )


class TestBreakdowns:
    def test_startup_time_formula(self, result):
        assert result.startup_time() == pytest.approx(
            result.operation_processes * result.config.process_startup
        )

    def test_intervals_within_response(self, result):
        for spans in result.intervals.values():
            for start, end, _label in spans:
                assert 0 <= start <= end <= result.response_time + 1e-9

    def test_interval_labels_reference_tasks(self, result):
        labels = {
            label.split(":")[0]
            for spans in result.intervals.values()
            for _s, _e, label in spans
        }
        assert labels <= {f"J{i}" for i in range(5)}

    def test_summary_format(self, result):
        text = result.summary()
        assert "SE@8p" in text
        assert "utilization" in text


class TestZeroWork:
    def test_empty_query_metrics(self, fast_config):
        catalog = Catalog.regular(NAMES, 0)
        tree = make_shape("left_linear", NAMES)
        schedule = get_strategy("SP").schedule(tree, catalog, 4)
        result = simulate(schedule, catalog, fast_config)
        # No tuples, no tuple work — but the stream handshakes still
        # happen (coordination is data-independent).
        assert result.busy_by_kind()["work"] == pytest.approx(0.0, abs=1e-9)
        assert result.busy_by_kind()["handshake"] > 0.0
