"""Turbo-vs-classic equivalence grid.

The analytic engine of :mod:`repro.sim.turbo` claims to replay the
classic event loop's float arithmetic operation for operation.  These
tests hold it to that: the same :class:`ScheduleSimulation` is built
twice, once drained through the event heap directly (``sim.clock.run()``
— the reference state machines of :mod:`repro.sim.process`) and once
through :func:`turbo.execute`, and every observable of the result must
be *exactly* equal — ``==`` on floats, not ``approx``.

The grid covers every shape × strategy × a mixed processor/skew axis,
plus extra FP-heavy points (deep pipelines, wide sibling fan-out) where
the turbo-v2 drain-structure work concentrates.  Caches are cleared per
point so this file always exercises the cold compute path;
``test_turbo_cache.py`` owns the warm-replay guarantees.
"""

import pytest

from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.sim import MachineConfig
from repro.sim.run import ScheduleSimulation
from repro.sim import turbo

SHAPES = ("wide_bushy", "left_linear", "right_bushy", "right_linear", "left_bushy")
STRATEGIES = ("SP", "SE", "RD", "FP")
#: (processors, skew_theta) pairs crossed with every shape × strategy.
AXES = ((8, 0.0), (40, 0.7))


def build(shape, strategy, processors, skew, cardinality=400, relations=6):
    names = paper_relation_names(relations)
    tree = make_shape(shape, names)
    catalog = Catalog.regular(names, cardinality)
    schedule = get_strategy(strategy).schedule(tree, catalog, processors)
    return ScheduleSimulation(
        schedule, catalog, MachineConfig.paper(), None, skew
    )


def classic(shape, strategy, processors, skew, **kwargs):
    sim = build(shape, strategy, processors, skew, **kwargs)
    sim.clock.run()
    return sim.result()


def fast(shape, strategy, processors, skew, **kwargs):
    sim = build(shape, strategy, processors, skew, **kwargs)
    assert turbo.execute(sim), "grid point unexpectedly turbo-ineligible"
    return sim.result()


def assert_identical(a, b):
    """Every observable equal to the last bit and the last event."""
    assert a.response_time == b.response_time
    assert a.events == b.events
    assert a.result_tuples == b.result_tuples
    assert a.operation_processes == b.operation_processes
    assert a.stream_count == b.stream_count
    assert len(a.task_timings) == len(b.task_timings)
    for ta, tb in zip(a.task_timings, b.task_timings):
        assert ta == tb
    assert a.intervals == b.intervals


@pytest.mark.parametrize("processors,skew", AXES)
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("shape", SHAPES)
def test_grid_point_identical(shape, strategy, processors, skew):
    turbo.clear_cache()
    assert_identical(
        classic(shape, strategy, processors, skew),
        fast(shape, strategy, processors, skew),
    )


class TestFPHeavyShapes:
    """The drain-structure work concentrates on FP: deep pipeline
    chains (every join a pipelined consumer) and wide sibling fan-out
    (one barrier releasing many replicated siblings)."""

    @pytest.mark.parametrize("shape", ("right_linear", "left_linear"))
    def test_deep_pipeline(self, shape):
        turbo.clear_cache()
        assert_identical(
            classic(shape, "FP", 40, 0.0, cardinality=300, relations=10),
            fast(shape, "FP", 40, 0.0, cardinality=300, relations=10),
        )

    def test_wide_fanout(self):
        turbo.clear_cache()
        assert_identical(
            classic("wide_bushy", "FP", 40, 0.0, cardinality=300, relations=12),
            fast("wide_bushy", "FP", 40, 0.0, cardinality=300, relations=12),
        )

    def test_wide_fanout_skewed(self):
        turbo.clear_cache()
        assert_identical(
            classic("wide_bushy", "FP", 24, 0.5, cardinality=300, relations=12),
            fast("wide_bushy", "FP", 24, 0.5, cardinality=300, relations=12),
        )

    def test_deep_pipeline_warm_replay_matches_classic(self):
        """A *warm* FP replay (profile-cache hit) must still equal the
        classic loop — the cached profile is the computed one."""
        turbo.clear_cache()
        reference = classic("right_linear", "FP", 40, 0.0, relations=10)
        fast("right_linear", "FP", 40, 0.0, relations=10)  # prime
        warm = fast("right_linear", "FP", 40, 0.0, relations=10)
        assert turbo.cache_stats()["profile_hits"] == 1
        assert_identical(reference, warm)
