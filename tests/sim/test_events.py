"""The discrete-event core."""

import pytest

from repro.sim import SimulationClock


class TestScheduling:
    def test_time_order(self):
        clock = SimulationClock()
        fired = []
        clock.at(2.0, lambda: fired.append("b"))
        clock.at(1.0, lambda: fired.append("a"))
        clock.at(3.0, lambda: fired.append("c"))
        clock.run()
        assert fired == ["a", "b", "c"]
        assert clock.now == 3.0

    def test_fifo_at_same_time(self):
        clock = SimulationClock()
        fired = []
        for name in "abc":
            clock.at(1.0, fired.append, name)
        clock.run()
        assert fired == ["a", "b", "c"]

    def test_after_is_relative(self):
        clock = SimulationClock()
        times = []
        clock.at(5.0, lambda: clock.after(2.0, lambda: times.append(clock.now)))
        clock.run()
        assert times == [7.0]

    def test_cannot_schedule_into_past(self):
        clock = SimulationClock()
        clock.at(5.0, lambda: None)
        clock.run()
        with pytest.raises(ValueError, match="past"):
            clock.at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimulationClock().after(-1.0, lambda: None)

    def test_args_passed(self):
        clock = SimulationClock()
        out = []
        clock.at(0.0, out.append, 42)
        clock.run()
        assert out == [42]


class TestRun:
    def test_run_until(self):
        clock = SimulationClock()
        fired = []
        clock.at(1.0, fired.append, 1)
        clock.at(10.0, fired.append, 10)
        clock.run(until=5.0)
        assert fired == [1]
        assert clock.now == 5.0
        assert clock.pending() == 1
        clock.run()
        assert fired == [1, 10]

    def test_events_generated_during_run(self):
        clock = SimulationClock()
        fired = []

        def cascade(depth):
            fired.append(depth)
            if depth < 3:
                clock.after(1.0, cascade, depth + 1)

        clock.at(0.0, cascade, 0)
        clock.run()
        assert fired == [0, 1, 2, 3]

    def test_runaway_guard(self):
        clock = SimulationClock()

        def forever():
            clock.after(1.0, forever)

        clock.at(0.0, forever)
        with pytest.raises(RuntimeError, match="exceeded"):
            clock.run(max_events=100)

    def test_event_count(self):
        clock = SimulationClock()
        for i in range(5):
            clock.at(float(i), lambda: None)
        clock.run()
        assert clock.events_dispatched == 5

    def test_determinism(self):
        def build():
            clock = SimulationClock()
            order = []
            clock.at(1.0, lambda: (order.append("x"), clock.after(0.5, order.append, "y")))
            clock.at(1.5, order.append, "z")
            clock.run()
            return order

        assert build() == build()
