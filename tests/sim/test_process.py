"""Operation-process state machines, driven directly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    MachineConfig,
    PipeliningHashJoinProcess,
    Port,
    Processor,
    SimulationClock,
)
from repro.sim.process import SimpleHashJoinProcess
from repro.sim.streams import ConsumerGroup


def make_port(mode, producers, total):
    coeff = 1.0 if mode == "base" else 2.0
    return Port(
        side="x", mode=mode, coefficient=coeff,
        expected_producers=producers, local_total=total,
    )


def build_process(
    cls,
    left_mode="base",
    right_mode="base",
    left_total=100.0,
    right_total=100.0,
    result_local=100.0,
    config=None,
    producers=1,
    **kwargs,
):
    clock = SimulationClock()
    processor = Processor(0)
    done = []
    process = cls(
        name="J0",
        processor=processor,
        clock=clock,
        config=config or MachineConfig.ideal(batches=4),
        left=make_port(left_mode, 0 if left_mode == "base" else producers, left_total),
        right=make_port(right_mode, 0 if right_mode == "base" else producers, right_total),
        result_local=result_local,
        result_coeff=2.0,
        output=None,
        output_pipelined=False,
        on_done=done.append,
        **kwargs,
    )
    return process, clock, processor, done


class TestLifecycle:
    def test_needs_both_init_and_release(self):
        process, clock, _, done = build_process(PipeliningHashJoinProcess)
        process.init_ready()
        clock.run()
        assert not process.started
        process.release()
        clock.run()
        assert process.started and process.done
        assert done == [process]

    def test_base_operands_processed_to_completion(self):
        process, clock, proc, _ = build_process(
            PipeliningHashJoinProcess, left_total=50.0, right_total=50.0,
            result_local=25.0,
        )
        process.init_ready()
        process.release()
        clock.run()
        # Work: 50*1 + 50*1 + 25*2 = 150 units at 1s each.
        assert proc.busy_time() == pytest.approx(150.0)
        assert process.out_total == pytest.approx(25.0)

    def test_zero_work_process_finishes_immediately(self):
        process, clock, proc, done = build_process(
            PipeliningHashJoinProcess, left_total=0.0, right_total=0.0,
            result_local=0.0,
        )
        process.init_ready()
        process.release()
        clock.run()
        assert process.done
        assert proc.busy_time() == 0.0


class TestSimpleHashJoinProcess:
    def test_probe_buffered_until_build_drained(self):
        """Arriving probe tuples must wait for the build phase."""
        process, clock, proc, _ = build_process(
            SimpleHashJoinProcess,
            left_mode="materialized", right_mode="pipelined",
            left_total=40.0, right_total=40.0, result_local=40.0,
            config=MachineConfig.ideal(batches=2),
        )
        process.init_ready()
        process.release()
        # Probe (right) data arrives before any build data.
        process.right.receive(40.0, 1, now=0.0)
        clock.run()
        assert process.right.processed == 0.0
        assert not process.done
        # Now the build operand arrives and completes; probing follows.
        process.left.receive(40.0, 1, now=clock.now)
        clock.run()
        assert process.left.processed == pytest.approx(40.0)
        assert process.right.processed == pytest.approx(40.0)
        assert process.done
        assert process.out_total == pytest.approx(40.0)

    def test_output_proportional_to_probe_progress(self):
        process, clock, _, _ = build_process(
            SimpleHashJoinProcess,
            left_total=10.0, right_total=100.0, result_local=50.0,
            config=MachineConfig.ideal(batches=10),
        )
        process.init_ready()
        process.release()
        clock.run()
        assert process.out_total == pytest.approx(50.0)

    def test_build_side_right(self):
        process, clock, _, _ = build_process(
            SimpleHashJoinProcess, build_side="right",
            left_total=100.0, right_total=10.0, result_local=5.0,
        )
        assert process.build is process.right
        assert process.probe is process.left
        process.init_ready()
        process.release()
        clock.run()
        assert process.done

    def test_bad_build_side(self):
        with pytest.raises(ValueError):
            build_process(SimpleHashJoinProcess, build_side="middle")


class TestPipeliningHashJoinProcess:
    def test_output_total_exact(self):
        process, clock, _, _ = build_process(
            PipeliningHashJoinProcess,
            left_total=60.0, right_total=40.0, result_local=30.0,
            config=MachineConfig.ideal(batches=8),
        )
        process.init_ready()
        process.release()
        clock.run()
        assert process.out_total == pytest.approx(30.0)

    @given(
        st.lists(st.floats(0.5, 30.0), min_size=1, max_size=8),
        st.lists(st.floats(0.5, 30.0), min_size=1, max_size=8),
        st.floats(0.0, 100.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_output_conserved_under_any_arrival_pattern(
        self, left_batches, right_batches, result_local
    ):
        """Whatever the interleaving and batch sizes, the total output
        equals result_local (the matching-density invariant)."""
        process, clock, _, _ = build_process(
            PipeliningHashJoinProcess,
            left_mode="pipelined", right_mode="pipelined",
            left_total=sum(left_batches), right_total=sum(right_batches),
            result_local=result_local,
            config=MachineConfig.ideal(batches=3),
        )
        process.init_ready()
        process.release()
        t = 0.0
        for i, batch in enumerate(left_batches):
            eos = 1 if i == len(left_batches) - 1 else 0
            clock.at(t, process.left.receive, batch, eos, t)
            t += 0.7
        t = 0.3
        for i, batch in enumerate(right_batches):
            eos = 1 if i == len(right_batches) - 1 else 0
            clock.at(t, process.right.receive, batch, eos, t)
            t += 1.1
        clock.run()
        assert process.done
        assert process.out_total == pytest.approx(result_local, rel=1e-9, abs=1e-9)

    def test_consumes_both_sides_fairly(self):
        process, clock, _, _ = build_process(
            PipeliningHashJoinProcess,
            left_total=100.0, right_total=100.0, result_local=0.0,
            config=MachineConfig.ideal(batches=10),
        )
        process.init_ready()
        process.release()
        clock.run(until=50.0)
        # After half the work, both sides should have progressed.
        assert process.left.processed > 0
        assert process.right.processed > 0


class TestHandshakes:
    def test_consumer_side_handshakes_charged_at_start(self):
        config = MachineConfig.ideal(batches=2).scaled(handshake=3.0)
        process, clock, proc, _ = build_process(
            PipeliningHashJoinProcess,
            left_mode="pipelined", right_mode="base",
            left_total=0.0, right_total=0.0, result_local=0.0,
            config=config, producers=5,
        )
        process.init_ready()
        process.release()
        process.left.receive(0.0, 5, now=0.0)
        clock.run()
        # 5 producers on the network port, none on the base port.
        assert proc.busy_time_for("J0:hs") == pytest.approx(15.0)

    def test_producer_side_handshakes_for_materialized_output(self):
        config = MachineConfig.ideal(batches=2).scaled(handshake=2.0)
        clock = SimulationClock()
        processor = Processor(0)
        consumer_ports = [make_port("materialized", 1, 0.0) for _ in range(4)]
        done = []
        process = SimpleHashJoinProcess(
            name="J0", processor=processor, clock=clock, config=config,
            left=make_port("base", 0, 10.0), right=make_port("base", 0, 10.0),
            result_local=10.0, result_coeff=2.0,
            output=ConsumerGroup(consumer_ports, latency=0.0),
            output_pipelined=False,
            on_done=done.append,
        )
        process.init_ready()
        process.release()
        clock.run()
        # Send setup: 4 consumers × 2.0 before completion.
        assert processor.busy_time_for("J0:hs") == pytest.approx(8.0)
        assert done
