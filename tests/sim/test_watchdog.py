"""The no-advance livelock watchdog and cancellable clock events."""

import pytest

from repro.sim import SimulationClock, Watchdog, WatchdogError


class TestCancellableEvents:
    def test_cancelled_event_never_fires(self):
        clock = SimulationClock()
        fired = []
        handle = clock.at_cancellable(1.0, fired.append, "late")
        clock.at(0.5, fired.append, "early")
        handle.cancel()
        clock.run()
        assert fired == ["early"]

    def test_cancelled_event_leaves_no_trace(self):
        """A cancelled entry is skipped entirely: not counted, and the
        clock never advances to its time — the property deadline
        identity rests on."""
        plain = SimulationClock()
        plain.at(1.0, lambda: None)
        plain.run()

        cancelled = SimulationClock()
        cancelled.at(1.0, lambda: None)
        handle = cancelled.at_cancellable(50.0, lambda: None)
        handle.cancel()
        cancelled.run()

        assert cancelled.now == plain.now == 1.0
        assert cancelled.events_dispatched == plain.events_dispatched == 1

    def test_uncancelled_handle_fires_normally(self):
        clock = SimulationClock()
        fired = []
        clock.at_cancellable(2.0, fired.append, "x")
        clock.run()
        assert fired == ["x"]
        assert clock.now == 2.0

    def test_cannot_schedule_into_the_past(self):
        clock = SimulationClock()
        clock.at(1.0, lambda: None)
        clock.run()
        with pytest.raises(ValueError, match="past"):
            clock.at_cancellable(0.5, lambda: None)


class TestWatchdog:
    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            Watchdog(max_events_per_instant=0)
        with pytest.raises(ValueError, match="positive"):
            Watchdog(trace_events=0)

    def test_trips_on_same_instant_flood(self):
        watchdog = Watchdog(max_events_per_instant=5)
        for _ in range(5):
            watchdog.observe(1.0, lambda: None, ())
        with pytest.raises(WatchdogError) as excinfo:
            watchdog.observe(1.0, lambda: None, ())
        assert watchdog.tripped
        assert excinfo.value.at == 1.0
        assert "livelock" in str(excinfo.value)

    def test_advancing_time_resets_the_count(self):
        watchdog = Watchdog(max_events_per_instant=3)
        for step in range(100):
            for _ in range(3):
                watchdog.observe(float(step), lambda: None, ())
        assert not watchdog.tripped

    def test_diagnostic_names_the_spinning_callback(self):
        def spinning_callback():
            pass

        watchdog = Watchdog(max_events_per_instant=2, trace_events=4)
        with pytest.raises(WatchdogError) as excinfo:
            for _ in range(5):
                watchdog.observe(2.5, spinning_callback, ())
        assert "spinning_callback" in excinfo.value.diagnostic
        assert "t=2.500000s" in excinfo.value.diagnostic

    def test_clock_integration_aborts_livelock(self):
        """A callback rescheduling itself at the current instant is the
        exact livelock class; the armed clock raises instead of
        spinning toward the 50M-event runaway guard."""
        clock = SimulationClock()
        clock.watchdog = Watchdog(max_events_per_instant=100)

        def respin():
            clock.at(clock.now, respin)

        clock.at(0.0, respin)
        with pytest.raises(WatchdogError):
            clock.run()
        assert clock.watchdog.tripped

    def test_armed_watchdog_is_invisible_when_quiet(self):
        """Pure observation: an armed watchdog that never trips changes
        nothing about the run."""
        def advance(clock, depth):
            if depth:
                clock.after(1.0, advance, clock, depth - 1)

        plain = SimulationClock()
        plain.at(0.0, advance, plain, 10)
        plain.run()

        armed = SimulationClock()
        armed.watchdog = Watchdog(max_events_per_instant=2)
        armed.at(0.0, advance, armed, 10)
        armed.run()

        assert armed.now == plain.now
        assert armed.events_dispatched == plain.events_dispatched
        assert not armed.watchdog.tripped
