"""Documentation stays true: runnable snippets and consistent indexes."""

import pathlib
import re


ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestReadme:
    def test_quickstart_block_runs(self):
        """The README's quickstart snippet must execute as printed."""
        text = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", text, re.S)
        assert blocks, "README lost its quickstart snippet"
        namespace = {}
        exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)

    def test_examples_listed_exist(self):
        text = (ROOT / "README.md").read_text()
        for match in re.findall(r"python (examples/\w+\.py)", text):
            assert (ROOT / match).exists(), f"README references missing {match}"

    def test_all_examples_are_listed(self):
        text = (ROOT / "README.md").read_text()
        for path in (ROOT / "examples").glob("*.py"):
            assert f"examples/{path.name}" in text, (
                f"{path.name} missing from README"
            )


class TestDesignIndex:
    def test_benchmarks_mentioned_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        for match in set(re.findall(r"benchmarks/(bench_\w+\.py)", text)):
            assert (ROOT / "benchmarks" / match).exists(), (
                f"DESIGN.md references missing benchmarks/{match}"
            )

    def test_all_figure_benches_indexed(self):
        text = (ROOT / "DESIGN.md").read_text()
        for path in (ROOT / "benchmarks").glob("bench_fig*.py"):
            assert path.name in text, f"{path.name} missing from DESIGN.md"

    def test_packages_mentioned_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        for dotted in set(re.findall(r"`repro\.([a-z_.]+)`", text)):
            parts = dotted.split(".")
            base = ROOT / "src" / "repro"
            candidates = [
                base.joinpath(*parts).with_suffix(".py"),
                base.joinpath(*parts) / "__init__.py",
            ]
            assert any(c.exists() for c in candidates), (
                f"DESIGN.md references missing module repro.{dotted}"
            )


class TestExperimentsDocument:
    def test_exists_with_required_sections(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for needle in (
            "Figure 14",
            "Figures 3, 4, 6, 7",
            "Figures 9–13",
            "qualitative claims",
        ):
            assert needle in text

    def test_covers_every_paper_figure(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for figure in range(9, 14):
            assert f"Figure {figure}" in text


class TestPublicApiDocumented:
    def test_every_public_module_has_a_docstring(self):
        import importlib
        import pkgutil

        import repro

        for info in pkgutil.walk_packages(repro.__path__, "repro."):
            if info.name.endswith("__main__"):
                continue  # importing it runs the CLI
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"

    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None
