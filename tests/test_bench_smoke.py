"""Tier-1 smoke of the figure benchmarks: one tiny sweep point per
paper figure, run through the same runner the full benchmarks use, and
proven cache-stable.  Keeps ``pytest -m bench_smoke`` under a few
seconds while still exercising spec expansion, process fan-out, the
disk cache, and the bench bridge for every figure shape."""

import pytest

from repro.bench import FIGURE_OF_SHAPE, Experiment
from repro.core import SHAPE_NAMES
from repro.runner import SweepSpec, run_sweep, to_sweep_result
from repro.sim import MachineConfig

#: Coarse batches keep each point in the low milliseconds.
FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.008, handshake=0.012,
    network_latency=0.05, batches=8,
)
CARDINALITY = 400
PROCESSORS = (12,)  # enough for FP's nine pipelining joins


def smoke_spec(shape):
    return SweepSpec(
        shapes=(shape,),
        cardinalities=(CARDINALITY,),
        processors=PROCESSORS,
        configs=(FAST,),
    )


@pytest.mark.bench_smoke
def test_faulted_smoke_point(tmp_path):
    """One faulted cell through the same runner: the crash aborts
    deterministically, caches, and replays byte-identically."""
    from repro.faults import CrashFault, FaultSchedule

    crash = FaultSchedule(crashes=(CrashFault(processor=0, at=0.25),))
    spec = SweepSpec(
        shapes=("wide_bushy",),
        strategies=("FP",),
        cardinalities=(CARDINALITY,),
        processors=PROCESSORS,
        configs=(FAST,),
        fault_schedules=(crash,),
    )
    run = run_sweep(spec, cache_dir=tmp_path)
    (row,) = run.rows()
    assert row["metrics"] == {
        "aborted": True, "aborted_at": 0.25, "reason": "processor 0 crashed"
    }
    warm = run_sweep(spec, cache_dir=tmp_path)
    assert warm.cached_count() == 1
    assert warm.jsonl() == run.jsonl()


@pytest.mark.bench_smoke
@pytest.mark.parametrize("shape", SHAPE_NAMES)
def test_figure_smoke_point(shape, tmp_path):
    assert shape in FIGURE_OF_SHAPE
    run = run_sweep(smoke_spec(shape), cache_dir=tmp_path)
    sweep = to_sweep_result(
        run.rows(), Experiment(shape, CARDINALITY, PROCESSORS)
    )
    assert set(sweep.series) == {"SP", "SE", "RD", "FP"}
    for strategy, series in sweep.series.items():
        (response_time,) = series.response_times
        assert response_time > 0, f"{strategy} on {shape}"
    # A second run is served entirely from the cache, byte-identical.
    warm = run_sweep(smoke_spec(shape), cache_dir=tmp_path)
    assert warm.cached_count() == len(run.rows())
    assert warm.computed_count() == 0
    assert warm.jsonl() == run.jsonl()


@pytest.mark.bench_smoke
def test_fairness_smoke_point():
    """One tiny fairness cell per scheduler: at 3x abuse the
    well-behaved tenant keeps more goodput under wfq than under fifo
    (the full gate lives in ``benchmarks/bench_fairness.py``)."""
    from repro.workload import fairness_sweep

    points = fairness_sweep(
        schedulers=("fifo", "wfq"),
        abuse_factors=(3.0,),
        good_rate=0.3,
        abuse_fair_rate=0.48,
        deadline=15.0,
        duration=60.0,
        machine_size=40,
        seed=7,
        strategy="FP",
        cardinality=CARDINALITY,
        config=FAST,
    )
    good = {p.scheduler: p for p in points if p.tenant == "good"}
    assert good["wfq"].completed > good["fifo"].completed
    assert good["wfq"].share > good["fifo"].share
