"""The command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestSimulate:
    def test_basic(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "--shape", "wide_bushy",
            "--cardinality", "1000", "--strategy", "SE", "--processors", "16",
        )
        assert code == 0
        assert "SE@16p" in out
        assert "response" in out

    def test_with_diagram(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "--cardinality", "500", "--processors", "12",
            "--diagram", "--width", "30",
        )
        assert code == 0
        assert "|" in out

    def test_with_skew(self, capsys):
        _, uniform = run_cli(
            capsys, "simulate", "--cardinality", "1000", "--processors", "16"
        )
        _, skewed = run_cli(
            capsys, "simulate", "--cardinality", "1000", "--processors", "16",
            "--skew", "1.0",
        )
        assert uniform != skewed


class TestPlan:
    def test_xra_output(self, capsys):
        code, out = run_cli(
            capsys, "plan", "--shape", "right_linear",
            "--strategy", "RD", "--processors", "18",
        )
        assert code == 0
        assert out.startswith("xra strategy=RD processors=18")
        assert "join[simple,build=left]" in out


class TestSweep:
    def test_table_and_plot(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "--shape", "left_linear", "--cardinality", "500",
            "--min-processors", "10", "--processors", "20", "--step", "10",
        )
        assert code == 0
        assert "procs" in out
        assert "legend" in out
        assert "best:" in out

    def test_claims_flag(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "--shape", "left_linear", "--cardinality", "500",
            "--min-processors", "10", "--processors", "20", "--step", "10",
            "--claims",
        )
        assert code == 0
        assert "[PASS]" in out or "[FAIL]" in out


class TestDiagram:
    def test_default_example_tree(self, capsys):
        code, out = run_cli(capsys, "diagram", "--strategy", "SP")
        assert code == 0
        assert "SP on 10 processors" in out


class TestAdvise:
    def test_wide_bushy_gets_se(self, capsys):
        code, out = run_cli(
            capsys, "advise", "--shape", "wide_bushy",
            "--cardinality", "40000", "--processors", "80",
        )
        assert code == 0
        assert out.startswith("SE")

    def test_disk_bound_gets_sp(self, capsys):
        code, out = run_cli(
            capsys, "advise", "--shape", "right_bushy",
            "--cardinality", "40000", "--processors", "80", "--disk-bound",
        )
        assert code == 0
        assert out.startswith("SP")


class TestMemory:
    def test_fp_40k_floor(self, capsys):
        code, out = run_cli(
            capsys, "memory", "--shape", "wide_bushy",
            "--cardinality", "40000", "--strategy", "FP", "--processors", "30",
        )
        assert code == 0
        assert "fits" in out
        assert "30 nodes" in out


class TestOptimize:
    def test_guidelines_mode(self, capsys):
        code, out = run_cli(
            capsys, "optimize", "--relations", "6", "--cardinality", "1000",
            "--processors", "12", "--guidelines",
        )
        assert code == 0
        assert "phase 1" in out and "phase 2" in out


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
