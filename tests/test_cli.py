"""The command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


class TestSimulate:
    def test_basic(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "--shape", "wide_bushy",
            "--cardinality", "1000", "--strategy", "SE", "--processors", "16",
        )
        assert code == 0
        assert "SE@16p" in out
        assert "response" in out

    def test_with_diagram(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "--cardinality", "500", "--processors", "12",
            "--diagram", "--width", "30",
        )
        assert code == 0
        assert "|" in out

    def test_deadline_abort_exits_nonzero(self, capsys):
        code, out = run_cli(
            capsys, "simulate", "--cardinality", "500", "--processors", "12",
            "--deadline", "0.001",
        )
        assert code == 1
        assert "aborted at t=0.001s: deadline" in out

    def test_with_skew(self, capsys):
        _, uniform = run_cli(
            capsys, "simulate", "--cardinality", "1000", "--processors", "16"
        )
        _, skewed = run_cli(
            capsys, "simulate", "--cardinality", "1000", "--processors", "16",
            "--skew", "1.0",
        )
        assert uniform != skewed


class TestPlan:
    def test_xra_output(self, capsys):
        code, out = run_cli(
            capsys, "plan", "--shape", "right_linear",
            "--strategy", "RD", "--processors", "18",
        )
        assert code == 0
        assert out.startswith("xra strategy=RD processors=18")
        assert "join[simple,build=left]" in out


class TestSweep:
    def test_table_and_plot(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "--shape", "left_linear", "--cardinality", "500",
            "--min-processors", "10", "--processors", "20", "--step", "10",
        )
        assert code == 0
        assert "procs" in out
        assert "legend" in out
        assert "best:" in out

    def test_claims_flag(self, capsys):
        code, out = run_cli(
            capsys, "sweep", "--shape", "left_linear", "--cardinality", "500",
            "--min-processors", "10", "--processors", "20", "--step", "10",
            "--claims",
        )
        assert code == 0
        assert "[PASS]" in out or "[FAIL]" in out


class TestDiagram:
    def test_default_example_tree(self, capsys):
        code, out = run_cli(capsys, "diagram", "--strategy", "SP")
        assert code == 0
        assert "SP on 10 processors" in out


class TestAdvise:
    def test_wide_bushy_gets_se(self, capsys):
        code, out = run_cli(
            capsys, "advise", "--shape", "wide_bushy",
            "--cardinality", "40000", "--processors", "80",
        )
        assert code == 0
        assert out.startswith("SE")

    def test_disk_bound_gets_sp(self, capsys):
        code, out = run_cli(
            capsys, "advise", "--shape", "right_bushy",
            "--cardinality", "40000", "--processors", "80", "--disk-bound",
        )
        assert code == 0
        assert out.startswith("SP")


class TestMemory:
    def test_fp_40k_floor(self, capsys):
        code, out = run_cli(
            capsys, "memory", "--shape", "wide_bushy",
            "--cardinality", "40000", "--strategy", "FP", "--processors", "30",
        )
        assert code == 0
        assert "fits" in out
        assert "30 nodes" in out


class TestOptimize:
    def test_guidelines_mode(self, capsys):
        code, out = run_cli(
            capsys, "optimize", "--relations", "6", "--cardinality", "1000",
            "--processors", "12", "--guidelines",
        )
        assert code == 0
        assert "phase 1" in out and "phase 2" in out


class TestWorkload:
    ARGS = (
        "workload", "--shape", "wide_bushy", "--cardinality", "200",
        "--relations", "4", "--strategy", "SE", "--machine-size", "8",
        "--arrivals", "poisson", "--rate", "0.05", "--duration", "60",
        "--seed", "1",
    )

    def test_open_loop_writes_jsonl(self, capsys, tmp_path):
        jsonl = tmp_path / "w.jsonl"
        code, out = run_cli(capsys, *self.ARGS, "--jsonl", str(jsonl))
        assert code == 0
        assert "exclusive@8p" in out
        assert str(jsonl) in out
        assert jsonl.read_text().count("\n") >= 1

    def test_repeat_runs_byte_identical(self, capsys, tmp_path):
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_cli(capsys, *self.ARGS, "--jsonl", str(first), "--quiet")
        run_cli(capsys, *self.ARGS, "--jsonl", str(second), "--quiet")
        assert first.read_bytes() == second.read_bytes()

    def test_closed_loop(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, "workload", "--shape", "left_linear",
            "--cardinality", "200", "--relations", "4", "--strategy", "SP",
            "--machine-size", "8", "--arrivals", "closed", "--clients", "2",
            "--queries-per-client", "2", "--think", "1.0",
            "--jsonl", str(tmp_path / "c.jsonl"),
        )
        assert code == 0
        assert "4/4 completed" in out

    def test_quiet_suppresses_summary(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, *self.ARGS, "--jsonl", str(tmp_path / "q.jsonl"),
            "--quiet",
        )
        assert code == 0
        assert out == ""

    def test_deadline_and_shed(self, capsys, tmp_path):
        """The README overload quick-start: a deadlined workload with
        deadline-aware shedding reports lifecycle activity."""
        code, out = run_cli(
            capsys, *self.ARGS, "--deadline", "0.5",
            "--shed", "deadline_aware", "--jsonl", str(tmp_path / "d.jsonl"),
        )
        assert code == 0
        assert "lifecycle:" in out

    def test_deadline_identity(self, capsys, tmp_path):
        """A generous --deadline leaves the JSONL byte-identical."""
        plain, bounded = tmp_path / "p.jsonl", tmp_path / "b.jsonl"
        run_cli(capsys, *self.ARGS, "--jsonl", str(plain), "--quiet")
        run_cli(capsys, *self.ARGS, "--deadline", "1e9",
                "--jsonl", str(bounded), "--quiet")
        assert plain.read_bytes() == bounded.read_bytes()


class TestServe:
    def test_requests_file(self, capsys, tmp_path):
        requests = tmp_path / "requests.jsonl"
        requests.write_text(
            '{"op": "query", "shape": "left_linear", "strategy": "SP", '
            '"processors": 10, "cardinality": 500}\n'
            '{"op": "bogus"}\n'
        )
        code, out = run_cli(
            capsys, "serve", "--requests", str(requests), "--quiet"
        )
        assert code == 0
        lines = out.strip().splitlines()
        assert len(lines) == 2
        assert '"ok": true' in lines[0]
        assert '"ok": false' in lines[1]


class TestParser:
    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])


class TestWorkloadSchedulers:
    ARGS = TestWorkload.ARGS

    def test_fifo_scheduler_is_byte_identical(self, capsys, tmp_path):
        plain, named = tmp_path / "p.jsonl", tmp_path / "f.jsonl"
        run_cli(capsys, *self.ARGS, "--jsonl", str(plain), "--quiet")
        run_cli(capsys, *self.ARGS, "--scheduler", "fifo",
                "--jsonl", str(named), "--quiet")
        assert plain.read_bytes() == named.read_bytes()

    def test_scheduler_reported_in_summary(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, *self.ARGS, "--scheduler", "edf",
            "--jsonl", str(tmp_path / "e.jsonl"),
        )
        assert code == 0
        assert "scheduler edf" in out

    def test_tenants_spec_file(self, capsys, tmp_path):
        spec = tmp_path / "tenants.json"
        spec.write_text(
            '{"tenants": [{"name": "a", "rate": 0.2},'
            ' {"name": "b", "rate": 0.2, "weight": 2.0}]}'
        )
        code, out = run_cli(
            capsys, *self.ARGS, "--scheduler", "wfq",
            "--tenants", str(spec), "--jsonl", str(tmp_path / "t.jsonl"),
        )
        assert code == 0
        assert "scheduler wfq" in out
        assert "tenants:" in out

    def test_pool_size_and_cost_accepted(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, *self.ARGS, "--scheduler", "wfq", "--pool-size", "4",
            "--scheduling-cost", "0.01",
            "--jsonl", str(tmp_path / "k.jsonl"), "--quiet",
        )
        assert code == 0

    def test_pool_size_without_scheduler_errors(self, capsys, tmp_path):
        with pytest.raises(ValueError, match="pool_size needs a scheduler"):
            run_cli(capsys, *self.ARGS, "--pool-size", "4",
                    "--jsonl", str(tmp_path / "x.jsonl"))


class TestCluster:
    ARGS = (
        "cluster", "--shape", "wide_bushy", "--cardinality", "200",
        "--relations", "4", "--strategy", "SE", "--machine-size", "8",
        "--shards", "2", "--rate", "0.05", "--duration", "60",
        "--seed", "1",
    )

    def test_writes_jsonl_and_summary(self, capsys, tmp_path):
        jsonl = tmp_path / "c.jsonl"
        code, out = run_cli(capsys, *self.ARGS, "--jsonl", str(jsonl))
        assert code == 0
        assert "cluster 2x8p" in out
        assert jsonl.read_text().count("\n") >= 1

    def test_out_is_an_alias_for_jsonl(self, capsys, tmp_path):
        jsonl = tmp_path / "alias.jsonl"
        code, _ = run_cli(capsys, *self.ARGS, "--out", str(jsonl), "--quiet")
        assert code == 0
        assert jsonl.exists()

    def test_record_then_replay_is_byte_identical(self, capsys, tmp_path):
        """Satellite: --record freezes the exact stream; --trace replay
        of that file reproduces the run bit for bit."""
        trace = tmp_path / "t.json"
        recorded = tmp_path / "rec.jsonl"
        replayed = tmp_path / "rep.jsonl"
        run_cli(capsys, *self.ARGS, "--record", str(trace),
                "--jsonl", str(recorded), "--quiet")
        run_cli(capsys, *self.ARGS, "--trace", str(trace),
                "--jsonl", str(replayed), "--quiet")
        assert recorded.read_bytes() == replayed.read_bytes()

    def test_workers_do_not_change_the_bytes(self, capsys, tmp_path):
        serial, pooled = tmp_path / "s.jsonl", tmp_path / "p.jsonl"
        run_cli(capsys, *self.ARGS, "--jsonl", str(serial), "--quiet")
        run_cli(capsys, *self.ARGS, "--workers", "2",
                "--jsonl", str(pooled), "--quiet")
        assert serial.read_bytes() == pooled.read_bytes()

    def test_autoscale_flags_accepted(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, *self.ARGS, "--autoscale", "reactive",
            "--scale-max", "16", "--scale-cooldown", "2.0",
            "--jsonl", str(tmp_path / "a.jsonl"),
        )
        assert code == 0


class TestClusterResilience:
    ARGS = TestCluster.ARGS

    def test_shard_faults_print_the_resilience_line(self, capsys, tmp_path):
        code, out = run_cli(
            capsys, *self.ARGS, "--shard-crash-rate", "0.05",
            "--shard-repair-time", "20", "--retry-budget", "2",
            "--jsonl", str(tmp_path / "r.jsonl"),
        )
        assert code == 0
        assert "resilience:" in out

    def test_engine_faults_accepted_on_the_prerouted_path(
        self, capsys, tmp_path
    ):
        code, out = run_cli(
            capsys, *self.ARGS, "--crash-rate", "0.01",
            "--repair-time", "10", "--recovery", "restart",
            "--jsonl", str(tmp_path / "f.jsonl"),
        )
        assert code == 0
        assert "resilience:" not in out

    def test_hedge_breaker_throttle_flags_accepted(self, capsys, tmp_path):
        code, _ = run_cli(
            capsys, *self.ARGS, "--hedge", "95", "--breaker", "--throttle",
            "--jsonl", str(tmp_path / "h.jsonl"), "--quiet",
        )
        assert code == 0

    def test_no_failover_baseline_flag(self, capsys, tmp_path):
        code, _ = run_cli(
            capsys, *self.ARGS, "--shard-crash-rate", "0.05",
            "--no-failover", "--jsonl", str(tmp_path / "b.jsonl"), "--quiet",
        )
        assert code == 0

    def test_resilient_workers_do_not_change_the_bytes(
        self, capsys, tmp_path
    ):
        serial, pooled = tmp_path / "s.jsonl", tmp_path / "p.jsonl"
        flags = ("--shard-crash-rate", "0.05", "--retry-budget", "2")
        run_cli(capsys, *self.ARGS, *flags, "--jsonl", str(serial), "--quiet")
        run_cli(capsys, *self.ARGS, *flags, "--workers", "2",
                "--jsonl", str(pooled), "--quiet")
        assert serial.read_bytes() == pooled.read_bytes()


class TestChaos:
    ARGS = (
        "chaos", "--shapes", "2x8", "--crash-rates", "0.1",
        "--queries", "8", "--rate", "1.0", "--horizon", "20",
        "--repair-time", "8", "--seed", "5",
    )

    def test_clean_campaign_exits_zero(self, capsys, tmp_path):
        out_path = tmp_path / "campaign.json"
        code, out = run_cli(
            capsys, *self.ARGS, "--out", str(out_path),
            "--fixtures", str(tmp_path / "fixtures"),
        )
        assert code == 0
        assert "all invariants held" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["violations"] == []
        assert len(payload["reports"]) == 1


class TestVersionFlag:
    def test_version_exits_zero(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestDefaultArtifactLocation:
    """Satellite: CLI artifacts land under benchmarks/results/ by
    default — never loose files in the repository root."""

    def run_in(self, tmp_path, monkeypatch, capsys, *argv):
        monkeypatch.chdir(tmp_path)
        code, out = run_cli(capsys, *argv)
        assert code == 0
        return [p for p in tmp_path.iterdir() if p.is_file()]

    def test_workload_default_under_results(
        self, tmp_path, monkeypatch, capsys
    ):
        loose = self.run_in(
            tmp_path, monkeypatch, capsys,
            "workload", "--shape", "wide_bushy", "--cardinality", "200",
            "--relations", "4", "--strategy", "SE", "--machine-size", "8",
            "--rate", "0.05", "--duration", "60", "--quiet",
        )
        assert loose == []
        results = tmp_path / "benchmarks" / "results"
        assert list(results.glob("workload_*.jsonl"))

    def test_cluster_default_under_results(
        self, tmp_path, monkeypatch, capsys
    ):
        loose = self.run_in(
            tmp_path, monkeypatch, capsys,
            "cluster", "--shape", "wide_bushy", "--cardinality", "200",
            "--relations", "4", "--strategy", "SE", "--machine-size", "8",
            "--shards", "2", "--rate", "0.05", "--duration", "60", "--quiet",
        )
        assert loose == []
        results = tmp_path / "benchmarks" / "results"
        assert list(results.glob("cluster_2x_hash_static.jsonl"))

    def test_resilient_cluster_default_under_results(
        self, tmp_path, monkeypatch, capsys
    ):
        loose = self.run_in(
            tmp_path, monkeypatch, capsys,
            "cluster", "--shape", "wide_bushy", "--cardinality", "200",
            "--relations", "4", "--strategy", "SE", "--machine-size", "8",
            "--shards", "2", "--rate", "0.05", "--duration", "60",
            "--retry-budget", "2", "--quiet",
        )
        assert loose == []
        results = tmp_path / "benchmarks" / "results"
        assert list(results.glob("cluster_2x_hash_static.jsonl"))

    def test_chaos_defaults_under_results(
        self, tmp_path, monkeypatch, capsys
    ):
        loose = self.run_in(
            tmp_path, monkeypatch, capsys,
            "chaos", "--shapes", "2x8", "--crash-rates", "0",
            "--queries", "4", "--rate", "1.0", "--horizon", "10",
            "--quiet",
        )
        assert loose == []
        results = tmp_path / "benchmarks" / "results"
        assert (results / "chaos_campaign.json").exists()
