"""Non-join operators and the Wisconsin join combiner."""


from repro.relational import (
    make_wisconsin,
    project,
    scan,
    split,
    union,
    wisconsin_combine,
)


class TestWisconsinCombine:
    def test_projection_rule(self):
        """(left.u2, right.u2, left.filler) — Section 4.1's projection."""
        left = (1, 10, "L")
        right = (1, 20, "R")
        assert wisconsin_combine(left, right) == (10, 20, "L")


class TestSplitUnion:
    def test_split_union_roundtrip(self):
        r = make_wisconsin(400, seed=6)
        parts = split(r, "unique1", 7)
        merged = union(parts)
        assert merged.same_bag(r)

    def test_split_fragment_count(self):
        assert len(split(make_wisconsin(10), "unique1", 3)) == 3

    def test_union_preserves_schema(self):
        r = make_wisconsin(20)
        merged = union(split(r, "unique2", 4))
        assert merged.schema.names() == r.schema.names()


class TestScanProject:
    def test_scan_is_identity(self):
        r = make_wisconsin(5)
        assert scan(r) is r

    def test_project(self):
        r = make_wisconsin(5)
        p = project(r, ["unique2"])
        assert p.schema.names() == ("unique2",)
        assert len(p) == 5
