"""Natural-join machinery for arbitrary schemas."""

import pytest

from repro.relational import Relation, Schema
from repro.relational.query import (
    JoinKeyError,
    natural_combiner,
    natural_join,
    natural_join_key,
    natural_result_schema,
)

ORDERS = Schema.ints("order_id", "customer_id", "amount")
CUSTOMERS = Schema.ints("customer_id", "nation_id")


def orders(*rows):
    return Relation(ORDERS, rows)


def customers(*rows):
    return Relation(CUSTOMERS, rows)


class TestJoinKey:
    def test_single_shared_attribute(self):
        assert natural_join_key(ORDERS, CUSTOMERS) == "customer_id"

    def test_no_shared_attribute_rejected(self):
        with pytest.raises(JoinKeyError, match="no shared"):
            natural_join_key(Schema.ints("a"), Schema.ints("b"))

    def test_ambiguous_rejected(self):
        with pytest.raises(JoinKeyError, match="ambiguous"):
            natural_join_key(Schema.ints("a", "b"), Schema.ints("a", "b"))


class TestResultSchema:
    def test_drops_duplicate_key_column(self):
        schema = natural_result_schema(ORDERS, CUSTOMERS)
        assert schema.names() == ("order_id", "customer_id", "amount", "nation_id")

    def test_combiner_matches_schema(self):
        combine = natural_combiner(ORDERS, CUSTOMERS)
        row = combine((1, 7, 100), (7, 3))
        assert row == (1, 7, 100, 3)


class TestNaturalJoin:
    def test_basic_fk_join(self):
        left = orders((1, 7, 100), (2, 8, 50), (3, 7, 25))
        right = customers((7, 1), (8, 2))
        out = natural_join(left, right)
        assert len(out) == 3
        assert sorted(out.rows) == [
            (1, 7, 100, 1), (2, 8, 50, 2), (3, 7, 25, 1),
        ]

    def test_unmatched_rows_dropped(self):
        out = natural_join(orders((1, 9, 10)), customers((7, 1)))
        assert len(out) == 0

    def test_duplicates_multiply(self):
        left = orders((1, 7, 1), (2, 7, 2))
        right = Relation(CUSTOMERS, [(7, 1), (7, 2)])
        assert len(natural_join(left, right)) == 4

    def test_matches_manual_nested_loop(self):
        import random

        rng = random.Random(3)
        left = orders(*[(i, rng.randrange(5), i) for i in range(30)])
        right = customers(*[(i, i * 10) for i in range(5)])
        out = natural_join(left, right)
        expected = sorted(
            l + (r[1],)
            for l in left
            for r in right
            if l[1] == r[0]
        )
        assert sorted(out.rows) == expected
