"""Wisconsin generator and the paper's regular query step (Section 4.1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    WISCONSIN_SCHEMA,
    WISCONSIN_TUPLE_BYTES,
    expected_join_cardinality,
    make_query_relations,
    make_wisconsin,
    wisconsin_join_project,
)
from repro.relational.relation import Relation


class TestGenerator:
    def test_schema_and_width(self):
        r = make_wisconsin(10)
        assert r.schema.names() == ("unique1", "unique2", "filler")
        assert r.schema.tuple_width() == WISCONSIN_TUPLE_BYTES == 208

    def test_unique_attributes_are_permutations(self):
        r = make_wisconsin(500, seed=3)
        assert sorted(r.column("unique1")) == list(range(500))
        assert sorted(r.column("unique2")) == list(range(500))

    def test_attributes_decorrelated(self):
        # The identity permutation would give a perfect rank correlation;
        # independent shuffles should not.
        r = make_wisconsin(1000, seed=1)
        matches = sum(1 for u1, u2, _ in r if u1 == u2)
        assert matches < 20  # expectation is 1

    def test_seed_determinism(self):
        assert list(make_wisconsin(50, seed=9)) == list(make_wisconsin(50, seed=9))

    def test_seeds_differ(self):
        assert list(make_wisconsin(50, seed=1)) != list(make_wisconsin(50, seed=2))

    def test_negative_cardinality_rejected(self):
        with pytest.raises(ValueError):
            make_wisconsin(-1)

    def test_zero_cardinality(self):
        assert len(make_wisconsin(0)) == 0

    def test_query_relations_are_pairwise_distinct(self):
        rels = make_query_relations(4, 100, seed=5)
        assert len(rels) == 4
        columns = [tuple(r.column("unique1")) for r in rels]
        assert len(set(columns)) == 4


class TestJoinProject:
    def test_result_is_wisconsin_with_operand_cardinality(self):
        left = make_wisconsin(300, seed=1)
        right = make_wisconsin(300, seed=2)
        out = wisconsin_join_project(left, right)
        assert out.schema.names() == WISCONSIN_SCHEMA.names()
        assert len(out) == 300 == expected_join_cardinality(left, right)

    def test_result_key_is_permutation(self):
        """The projected unique1 must again be a permutation so the
        result can feed the next join unchanged."""
        left = make_wisconsin(200, seed=1)
        right = make_wisconsin(200, seed=2)
        out = wisconsin_join_project(left, right)
        assert sorted(out.column("unique1")) == list(range(200))
        assert sorted(out.column("unique2")) == list(range(200))

    def test_chaining_preserves_cardinality(self):
        rels = make_query_relations(4, 150, seed=3)
        result = rels[0]
        for other in rels[1:]:
            result = wisconsin_join_project(result, other)
            assert len(result) == 150

    def test_semantics_match_manual_join(self):
        left = make_wisconsin(50, seed=1)
        right = make_wisconsin(50, seed=2)
        out = wisconsin_join_project(left, right)
        right_by_key = {row[0]: row for row in right}
        expected = sorted(
            (l_u2, right_by_key[l_u1][1], l_fill)
            for l_u1, l_u2, l_fill in left
        )
        assert sorted(out.rows) == expected

    def test_unequal_cardinalities(self):
        left = make_wisconsin(100, seed=1)
        right = make_wisconsin(60, seed=2)
        out = wisconsin_join_project(left, right)
        # Keys 0..59 exist on both sides; 1:1 within the overlap.
        assert len(out) == 60

    def test_rejects_non_wisconsin_operands(self):
        from repro.relational import Schema

        bogus = Relation(Schema.ints("x"), [(1,)])
        with pytest.raises(ValueError, match="Wisconsin"):
            wisconsin_join_project(bogus, make_wisconsin(5))

    def test_rejects_duplicate_left_keys(self):
        dup = Relation(WISCONSIN_SCHEMA, [(1, 1, "a"), (1, 2, "b")])
        with pytest.raises(ValueError, match="unique"):
            wisconsin_join_project(dup, make_wisconsin(5))

    @given(st.integers(min_value=1, max_value=80), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_cardinality_preserved(self, cardinality, seed):
        left = make_wisconsin(cardinality, seed=seed)
        right = make_wisconsin(cardinality, seed=seed + 1)
        out = wisconsin_join_project(left, right)
        assert len(out) == cardinality
        assert sorted(out.column("unique1")) == list(range(cardinality))
