"""NumPy columnar join kernels vs the row-at-a-time reference joins.

The contract is strict: the vectorized kernels must reproduce the
reference joins' *row sequence*, not merely the same bag — emission
order is part of the executor's observable behaviour.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.core import SHAPE_NAMES, get_strategy, make_shape
from repro.engine.local import execute_schedule, reference_result
from repro.relational.columnar import (
    HAVE_NUMPY,
    join_fragment_rows,
    pipelining_join_pairs,
    simple_join_pairs,
)
from repro.relational.hashjoin import PipeliningHashJoin, SimpleHashJoin


def combine(left, right):
    """The Wisconsin combiner shape used by the executor."""
    return (left[1], right[1], left[2])


def make_rows(tag, keys):
    return [(k, i, f"{tag}{i}") for i, k in enumerate(keys)]


def random_keys(rng, n, span):
    """Keys with plenty of duplicates (span << n forces multi-matches)."""
    return [rng.randrange(span) for _ in range(n)]


def reference_simple(build_rows, probe_rows, swap):
    """Drive SimpleHashJoin exactly as the executor does."""
    comb = combine if not swap else (lambda b, p: combine(p, b))
    join = SimpleHashJoin(0, 0, comb)
    for row in build_rows:
        join.build(row)
    join.end_build()
    out = []
    for row in probe_rows:
        out.extend(join.probe(row))
    return out


def reference_pipelining(left_rows, right_rows):
    """Drive PipeliningHashJoin with the executor's alternating rounds."""
    join = PipeliningHashJoin(0, 0, combine)
    out = []
    left_iter = iter(left_rows)
    right_iter = iter(right_rows)
    exhausted = 0
    while exhausted < 2:
        exhausted = 0
        row = next(left_iter, None)
        if row is None:
            exhausted += 1
        else:
            out.extend(join.insert_left(row))
        row = next(right_iter, None)
        if row is None:
            exhausted += 1
        else:
            out.extend(join.insert_right(row))
    return out


class TestKernelProperties:
    """Randomized equivalence on duplicate-heavy key distributions."""

    @pytest.mark.parametrize("seed", range(12))
    def test_simple_join_matches_reference_order(self, seed):
        rng = random.Random(seed)
        nb, nprobe = rng.randrange(0, 60), rng.randrange(0, 60)
        span = rng.choice([1, 3, 10, 50])
        build = make_rows("b", random_keys(rng, nb, span))
        probe = make_rows("p", random_keys(rng, nprobe, span))
        expected = reference_simple(build, probe, swap=False)
        got = join_fragment_rows(build, probe, 0, "simple", "left")
        assert got == expected

    @pytest.mark.parametrize("seed", range(12))
    def test_simple_join_build_right_matches_reference_order(self, seed):
        rng = random.Random(1000 + seed)
        span = rng.choice([2, 7, 25])
        left = make_rows("l", random_keys(rng, rng.randrange(0, 50), span))
        right = make_rows("r", random_keys(rng, rng.randrange(0, 50), span))
        # build side right: build=right rows, probe=left rows, swapped combiner
        expected = reference_simple(right, left, swap=True)
        got = join_fragment_rows(left, right, 0, "simple", "right")
        assert got == expected

    @pytest.mark.parametrize("seed", range(12))
    def test_pipelining_join_matches_reference_order(self, seed):
        rng = random.Random(2000 + seed)
        span = rng.choice([1, 4, 15, 40])
        left = make_rows("l", random_keys(rng, rng.randrange(0, 60), span))
        right = make_rows("r", random_keys(rng, rng.randrange(0, 60), span))
        expected = reference_pipelining(left, right)
        got = join_fragment_rows(left, right, 0, "pipelining", "left")
        assert got == expected

    def test_empty_operands(self):
        assert join_fragment_rows([], [], 0, "simple", "left") == []
        assert join_fragment_rows([], make_rows("r", [1, 2]), 0,
                                  "pipelining", "left") == []
        assert join_fragment_rows(make_rows("l", [1]), [], 0,
                                  "simple", "right") == []

    def test_result_values_are_plain_python_ints(self):
        rows = join_fragment_rows(
            make_rows("l", [5, 5]), make_rows("r", [5]), 0, "pipelining", "left"
        )
        assert rows
        for row in rows:
            assert type(row[0]) is int and type(row[1]) is int

    def test_pair_kernels_agree_on_total_matches(self):
        rng = random.Random(7)
        lk = np.array(random_keys(rng, 80, 9), dtype=np.int64)
        rk = np.array(random_keys(rng, 80, 9), dtype=np.int64)
        brute = sum(1 for a in lk.tolist() for b in rk.tolist() if a == b)
        assert simple_join_pairs(lk, rk)[0].size == brute
        assert pipelining_join_pairs(lk, rk)[0].size == brute


class TestExecutorEquivalence:
    """execute_schedule(use_columnar=True) == use_columnar=False, row for row."""

    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    def test_fragment_rows_identical(self, strategy, names6, relations6, catalog6):
        tree = make_shape("wide_bushy", names6)
        schedule = get_strategy(strategy).schedule(tree, catalog6, 7)
        pure = execute_schedule(schedule, relations6, use_columnar=False)
        fast = execute_schedule(schedule, relations6, use_columnar=True)
        for p_task, f_task in zip(pure.tasks, fast.tasks):
            assert p_task.input_sizes == f_task.input_sizes
            for p_frag, f_frag in zip(p_task.fragments, f_task.fragments):
                assert list(p_frag.rows) == list(f_frag.rows)

    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    def test_columnar_matches_oracle(self, shape, names6, relations6, catalog6):
        tree = make_shape(shape, names6)
        schedule = get_strategy("FP").schedule(tree, catalog6, 6)
        result = execute_schedule(schedule, relations6, use_columnar=True)
        assert result.relation.same_bag(reference_result(tree, relations6))

    def test_auto_defaults_to_columnar_when_numpy_present(
        self, names6, relations6, catalog6
    ):
        assert HAVE_NUMPY
        tree = make_shape("left_linear", names6)
        schedule = get_strategy("SP").schedule(tree, catalog6, 4)
        auto = execute_schedule(schedule, relations6)
        pinned = execute_schedule(schedule, relations6, use_columnar=True)
        assert auto.relation.same_bag(pinned.relation)
