"""Hash partitioning and the non-skew assumption."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    bucket,
    fragment_sizes,
    hash_partition,
    make_wisconsin,
    skew,
)


class TestBucket:
    def test_range(self):
        for value in range(1000):
            assert 0 <= bucket(value, 7) < 7

    def test_deterministic(self):
        assert bucket(12345, 13) == bucket(12345, 13)

    def test_single_fragment(self):
        assert bucket(99, 1) == 0

    def test_rejects_zero_fragments(self):
        with pytest.raises(ValueError):
            bucket(1, 0)

    def test_spreads_consecutive_keys(self):
        """Dense key ranges (the Wisconsin permutations) must not land
        in lock-step patterns."""
        counts = [0] * 8
        for value in range(8000):
            counts[bucket(value, 8)] += 1
        assert max(counts) < 1.2 * 8000 / 8

    @given(st.integers(min_value=0, max_value=2**31), st.integers(1, 97))
    @settings(max_examples=100, deadline=None)
    def test_property_in_range(self, value, fragments):
        assert 0 <= bucket(value, fragments) < fragments


class TestHashPartition:
    def test_partition_is_complete_and_disjoint(self):
        r = make_wisconsin(500, seed=2)
        parts = hash_partition(r, "unique1", 9)
        assert sum(fragment_sizes(parts)) == 500
        all_rows = sorted(row for part in parts for row in part)
        assert all_rows == sorted(r.rows)

    def test_fragment_count(self):
        parts = hash_partition(make_wisconsin(10), "unique1", 4)
        assert len(parts) == 4

    def test_key_locality(self):
        """Every copy of a key lands in the same fragment."""
        r = make_wisconsin(300, seed=1)
        parts = hash_partition(r, "unique2", 5)
        for i, part in enumerate(parts):
            for row in part:
                assert bucket(row[1], 5) == i

    def test_skew_close_to_one(self):
        """The paper assumes non-skewed partitioning; Wisconsin keys
        hash near-uniformly."""
        r = make_wisconsin(5000, seed=4)
        parts = hash_partition(r, "unique1", 10)
        assert skew(parts) < 1.15

    def test_skew_of_empty(self):
        parts = hash_partition(make_wisconsin(0), "unique1", 4)
        assert skew(parts) == 1.0

    def test_single_fragment_identity(self):
        r = make_wisconsin(50, seed=1)
        (part,) = hash_partition(r, "unique1", 1)
        assert sorted(part.rows) == sorted(r.rows)
