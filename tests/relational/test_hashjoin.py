"""The two hash-join algorithms (Section 2.3.2, Figure 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (
    PipeliningHashJoin,
    Relation,
    Schema,
    SimpleHashJoin,
    first_result_position,
    pipelining_hash_join,
    simple_hash_join,
)

KV = Schema.ints("k", "v")


def rel(*rows):
    return Relation(KV, rows)


def nested_loop(left, right, lk=0, rk=0):
    """Brute-force reference join (concatenation combiner)."""
    return sorted(
        l + r for l in left for r in right if l[lk] == r[rk]
    )


class TestSimpleHashJoin:
    def test_matches_nested_loop(self):
        left = rel((1, 10), (2, 20), (2, 21))
        right = rel((2, 200), (3, 300), (2, 201))
        out = simple_hash_join(left, right, "k", "k")
        assert sorted(out.rows) == nested_loop(left, right)

    def test_probe_before_end_build_is_an_error(self):
        """The defining limitation: no pipelining along the build
        operand (Figure 1, [Sch90])."""
        join = SimpleHashJoin(0, 0)
        join.build((1, 10))
        with pytest.raises(RuntimeError, match="before end_build"):
            join.probe((1, 99))

    def test_build_after_end_build_is_an_error(self):
        join = SimpleHashJoin(0, 0)
        join.end_build()
        with pytest.raises(RuntimeError):
            join.build((1, 10))

    def test_single_hash_table(self):
        join = SimpleHashJoin(0, 0)
        assert join.hash_tables() == 1

    def test_counters(self):
        join = SimpleHashJoin(0, 0)
        for row in [(1, 1), (1, 2)]:
            join.build(row)
        join.end_build()
        assert join.table_size() == 2
        out = join.probe((1, 9))
        assert len(out) == 2
        assert join.result_count == 2
        assert join.probe_count == 1

    def test_no_match_returns_empty(self):
        join = SimpleHashJoin(0, 0)
        join.build((1, 1))
        join.end_build()
        assert join.probe((2, 2)) == []

    def test_empty_build(self):
        out = simple_hash_join(rel(), rel((1, 1)), "k", "k")
        assert len(out) == 0


class TestPipeliningHashJoin:
    def test_matches_nested_loop(self):
        left = rel((1, 10), (2, 20), (2, 21))
        right = rel((2, 200), (3, 300), (2, 201))
        out = pipelining_hash_join(left, right, "k", "k")
        assert sorted(out.rows) == nested_loop(left, right)

    def test_interleaving_invariant(self):
        """The result bag must not depend on arrival interleaving."""
        left = rel(*[(i % 5, i) for i in range(40)])
        right = rel(*[(i % 5, 100 + i) for i in range(30)])
        reference = nested_loop(left, right)
        for interleave in (1, 3, 7, 100):
            out = pipelining_hash_join(left, right, "k", "k", interleave=interleave)
            assert sorted(out.rows) == reference

    def test_every_match_produced_exactly_once(self):
        join = PipeliningHashJoin(0, 0)
        produced = []
        produced += join.insert_left((1, 10))
        produced += join.insert_right((1, 20))   # matches the left tuple
        produced += join.insert_left((1, 11))    # matches the right tuple
        assert len(produced) == 2
        assert join.result_count == 2

    def test_two_hash_tables(self):
        join = PipeliningHashJoin(0, 0)
        join.insert_left((1, 1))
        join.insert_right((2, 2))
        assert join.hash_tables() == 2
        assert join.table_sizes() == (1, 1)

    def test_symmetry(self):
        """insert_left/insert_right are mirror images."""
        a = PipeliningHashJoin(0, 0)
        b = PipeliningHashJoin(0, 0)
        out_a = a.insert_left((1, 1)) + a.insert_right((1, 2))
        out_b = b.insert_right((1, 2)) + b.insert_left((1, 1))
        assert len(out_a) == len(out_b) == 1

    def test_rejects_bad_interleave(self):
        with pytest.raises(ValueError):
            pipelining_hash_join(rel(), rel(), "k", "k", interleave=0)


class TestFigure1Behaviour:
    """The pipelining algorithm produces output as early as possible;
    the simple algorithm cannot emit before the build completes."""

    def test_pipelining_emits_before_inputs_exhausted(self):
        n = 100
        left = rel(*[(i, i) for i in range(n)])
        right = rel(*[(i, i) for i in range(n)])
        position = first_result_position(left, right, "k", "k")
        assert position is not None
        # First match appears after a handful of tuples, far before
        # either operand (n tuples) is exhausted.
        assert position <= 2, "identical key order must match immediately"

    def test_simple_join_blocks_until_build_done(self):
        join = SimpleHashJoin(0, 0)
        for i in range(100):
            join.build((i, i))
            with pytest.raises(RuntimeError):
                join.probe((i, i))
        join.end_build()
        assert join.probe((0, 0))

    def test_first_result_none_for_disjoint_keys(self):
        left = rel((1, 1))
        right = rel((2, 2))
        assert first_result_position(left, right, "k", "k") is None

    def test_first_result_drains_longer_operand(self):
        left = rel((5, 1))
        right = rel((1, 1), (2, 2), (5, 3))
        position = first_result_position(left, right, "k", "k")
        assert position is not None


@st.composite
def keyed_rows(draw):
    n = draw(st.integers(0, 30))
    return [
        (draw(st.integers(0, 8)), draw(st.integers(0, 1000))) for _ in range(n)
    ]


class TestAlgorithmsAgree:
    @given(keyed_rows(), keyed_rows())
    @settings(max_examples=60, deadline=None)
    def test_property_both_algorithms_match_nested_loop(self, lrows, rrows):
        left = rel(*lrows)
        right = rel(*rrows)
        reference = nested_loop(left, right)
        simple = simple_hash_join(left, right, "k", "k")
        pipelining = pipelining_hash_join(left, right, "k", "k", interleave=2)
        assert sorted(simple.rows) == reference
        assert sorted(pipelining.rows) == reference
