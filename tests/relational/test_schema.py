"""Schema and attribute behaviour."""

import pytest

from repro.relational import Attribute, Schema


class TestAttribute:
    def test_defaults(self):
        attr = Attribute("x")
        assert attr.kind == "int"
        assert attr.width == 4

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Attribute("x", kind="float")

    def test_rejects_nonpositive_width(self):
        with pytest.raises(ValueError, match="width"):
            Attribute("x", width=0)

    def test_frozen(self):
        attr = Attribute("x")
        with pytest.raises(AttributeError):
            attr.name = "y"


class TestSchema:
    def test_ints_builder(self):
        schema = Schema.ints("a", "b", "c")
        assert schema.names() == ("a", "b", "c")
        assert len(schema) == 3
        assert all(attr.kind == "int" for attr in schema)

    def test_of_builder(self):
        schema = Schema.of(Attribute("a"), Attribute("s", "str", 10))
        assert schema.names() == ("a", "s")

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Schema.ints("a", "a")

    def test_index_of(self):
        schema = Schema.ints("a", "b")
        assert schema.index_of("b") == 1
        with pytest.raises(KeyError):
            schema.index_of("z")

    def test_contains(self):
        schema = Schema.ints("a", "b")
        assert "a" in schema
        assert "z" not in schema

    def test_tuple_width(self):
        schema = Schema.of(Attribute("a"), Attribute("s", "str", 200))
        assert schema.tuple_width() == 204

    def test_project_order_and_subset(self):
        schema = Schema.ints("a", "b", "c")
        projected = schema.project(["c", "a"])
        assert projected.names() == ("c", "a")

    def test_project_unknown_raises(self):
        with pytest.raises(KeyError):
            Schema.ints("a").project(["b"])

    def test_concat_disjoint(self):
        merged = Schema.ints("a").concat(Schema.ints("b"))
        assert merged.names() == ("a", "b")

    def test_concat_collision_requires_prefix(self):
        with pytest.raises(ValueError, match="collision"):
            Schema.ints("a").concat(Schema.ints("a"))
        merged = Schema.ints("a").concat(Schema.ints("a"), prefix="r_")
        assert merged.names() == ("a", "r_a")

    def test_concat_prefix_collision_still_raises(self):
        with pytest.raises(ValueError, match="collision"):
            Schema.ints("a", "r_a").concat(Schema.ints("a"), prefix="r_")

    def test_attribute_lookup(self):
        schema = Schema.of(Attribute("s", "str", 7))
        assert schema.attribute("s").width == 7
