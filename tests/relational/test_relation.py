"""Relation container semantics."""

import pytest

from repro.relational import Relation, Schema

AB = Schema.ints("a", "b")


def rel(*rows):
    return Relation(AB, rows)


class TestConstruction:
    def test_materializes_rows(self):
        r = rel((1, 2), (3, 4))
        assert len(r) == 2
        assert list(r) == [(1, 2), (3, 4)]

    def test_rows_become_tuples(self):
        r = Relation(AB, [[1, 2]])
        assert r.rows[0] == (1, 2)
        assert isinstance(r.rows[0], tuple)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ValueError, match="arity"):
            rel((1, 2, 3))

    def test_empty(self):
        assert len(rel()) == 0

    def test_repr_mentions_cardinality(self):
        assert "2 rows" in repr(rel((1, 2), (3, 4)))


class TestDerivations:
    def test_column(self):
        assert rel((1, 2), (3, 4)).column("b") == [2, 4]

    def test_project_keeps_duplicates(self):
        r = rel((1, 2), (1, 3)).project(["a"])
        assert list(r) == [(1,), (1,)]

    def test_project_reorders(self):
        r = rel((1, 2)).project(["b", "a"])
        assert list(r) == [(2, 1)]

    def test_select(self):
        r = rel((1, 2), (3, 4)).select(lambda row: row[0] > 1)
        assert list(r) == [(3, 4)]

    def test_extend_returns_new(self):
        r1 = rel((1, 2))
        r2 = r1.extend([(3, 4)])
        assert len(r1) == 1
        assert len(r2) == 2

    def test_extend_checks_arity(self):
        with pytest.raises(ValueError):
            rel((1, 2)).extend([(1,)])

    def test_bytes(self):
        assert rel((1, 2), (3, 4)).bytes() == 2 * 8


class TestBagEquality:
    def test_order_irrelevant(self):
        assert rel((1, 2), (3, 4)).same_bag(rel((3, 4), (1, 2)))

    def test_multiplicity_matters(self):
        assert not rel((1, 2), (1, 2)).same_bag(rel((1, 2)))
        assert rel((1, 2), (1, 2)).same_bag(rel((1, 2), (1, 2)))

    def test_different_rows(self):
        assert not rel((1, 2)).same_bag(rel((2, 1)))


class TestUnionAll:
    def test_concatenates(self):
        u = Relation.union_all([rel((1, 2)), rel((3, 4)), rel()])
        assert len(u) == 2

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            Relation.union_all([])

    def test_incompatible_schemas_rejected(self):
        other = Relation(Schema.ints("x", "y"), [(1, 2)])
        with pytest.raises(ValueError, match="incompatible"):
            Relation.union_all([rel((1, 2)), other])
