"""Cross-cutting property-based tests.

Random trees, random strategies, random machine constants: the
invariants that must hold for *any* input, not just the paper's five
shapes — schedule validity, conservation of tuples through the
simulated dataflow, agreement between the real executor and the
oracle, and XRA round-tripping.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Catalog,
    CostModel,
    Join,
    Leaf,
    get_strategy,
    joins_postorder,
    leaf_names,
    num_joins,
)
from repro.sim import MachineConfig
from repro.sim.run import simulate
from repro.xra import XRAPlan, format_plan, parse_plan

STRATEGIES = ("SP", "SE", "RD", "FP")


@st.composite
def trees(draw, min_leaves=2, max_leaves=8):
    count = draw(st.integers(min_leaves, max_leaves))
    nodes = [Leaf(f"R{i}") for i in range(count)]
    while len(nodes) > 1:
        i = draw(st.integers(0, len(nodes) - 2))
        nodes.insert(i, Join(nodes.pop(i), nodes.pop(i)))
    return nodes[0]


@st.composite
def tree_with_catalog(draw):
    tree = draw(trees())
    names = leaf_names(tree)
    cards = {
        name: draw(st.integers(10, 2000)) for name in names
    }
    return tree, Catalog(cards)


FAST = MachineConfig(
    tuple_unit=0.001, process_startup=0.005, handshake=0.005,
    network_latency=0.02, batches=6,
)


class TestScheduleProperties:
    @given(tree_with_catalog(), st.sampled_from(STRATEGIES), st.integers(0, 30))
    @settings(max_examples=80, deadline=None)
    def test_property_schedules_validate(self, tree_catalog, strategy, extra):
        tree, catalog = tree_catalog
        processors = num_joins(tree) + extra
        schedule = get_strategy(strategy).schedule(tree, catalog, processors)
        # validate() already ran; check global invariants again.
        assert schedule.operation_processes() >= processors or strategy != "SP"
        used = {p for t in schedule.tasks for p in t.processors}
        assert used <= set(range(processors))

    @given(tree_with_catalog(), st.integers(0, 30))
    @settings(max_examples=40, deadline=None)
    def test_property_fp_partitions_processors(self, tree_catalog, extra):
        tree, catalog = tree_catalog
        processors = num_joins(tree) + extra
        schedule = get_strategy("FP").schedule(tree, catalog, processors)
        used = sorted(p for t in schedule.tasks for p in t.processors)
        assert used == list(range(processors))


class TestSimulationProperties:
    @given(tree_with_catalog(), st.sampled_from(STRATEGIES), st.integers(0, 12))
    @settings(max_examples=40, deadline=None)
    def test_property_tuples_conserved(self, tree_catalog, strategy, extra):
        """The root must emit exactly the estimated result cardinality
        regardless of tree shape, strategy, and machine size."""
        tree, catalog = tree_catalog
        processors = num_joins(tree) + extra
        schedule = get_strategy(strategy).schedule(tree, catalog, processors)
        result = simulate(schedule, catalog, FAST)
        expected = CostModel().annotate(tree, catalog)[
            joins_postorder(tree)[-1]
        ].result
        assert result.result_tuples == pytest.approx(expected, rel=1e-6)

    @given(tree_with_catalog(), st.sampled_from(STRATEGIES))
    @settings(max_examples=30, deadline=None)
    def test_property_busy_time_is_total_work(self, tree_catalog, strategy):
        """With zero overhead constants, CPU-busy time equals the §4.3
        total cost exactly — work is neither lost nor invented."""
        tree, catalog = tree_catalog
        schedule = get_strategy(strategy).schedule(
            tree, catalog, num_joins(tree) + 3
        )
        config = MachineConfig(
            tuple_unit=1.0, process_startup=0.0, handshake=0.0,
            network_latency=0.0, batches=4,
        )
        result = simulate(schedule, catalog, config)
        total = CostModel().total_cost(tree, catalog)
        assert result.busy_time() == pytest.approx(total, rel=1e-6)

    @given(tree_with_catalog(), st.sampled_from(STRATEGIES))
    @settings(max_examples=25, deadline=None)
    def test_property_response_at_least_fluid_bound(self, tree_catalog, strategy):
        tree, catalog = tree_catalog
        processors = num_joins(tree) + 3
        schedule = get_strategy(strategy).schedule(tree, catalog, processors)
        result = simulate(schedule, catalog, FAST)
        fluid = result.busy_time() / processors
        assert result.response_time >= fluid * 0.999

    @given(tree_with_catalog(), st.floats(0.0, 1.5))
    @settings(max_examples=25, deadline=None)
    def test_property_skew_conserves_tuples(self, tree_catalog, theta):
        tree, catalog = tree_catalog
        schedule = get_strategy("FP").schedule(tree, catalog, num_joins(tree) + 4)
        result = simulate(schedule, catalog, FAST, skew_theta=theta)
        expected = CostModel().annotate(tree, catalog)[
            joins_postorder(tree)[-1]
        ].result
        assert result.result_tuples == pytest.approx(expected, rel=1e-6)


class TestXRAProperties:
    @given(tree_with_catalog(), st.sampled_from(STRATEGIES))
    @settings(max_examples=40, deadline=None)
    def test_property_xra_text_roundtrip(self, tree_catalog, strategy):
        tree, catalog = tree_catalog
        schedule = get_strategy(strategy).schedule(tree, catalog, num_joins(tree) + 5)
        plan = XRAPlan.from_schedule(schedule)
        reparsed = parse_plan(format_plan(plan))
        back = reparsed.to_schedule()
        assert back.operation_processes() == schedule.operation_processes()
        assert back.stream_count() == schedule.stream_count()
        for a, b in zip(schedule.tasks, back.tasks):
            assert a.processors == b.processors
            assert a.algorithm == b.algorithm


class TestWorkloadProperties:
    """Seed-determinism audit: every stochastic workload entry point
    takes an explicit seed, and equal seeds give identical traffic."""

    @given(st.integers(0, 10**6), st.floats(0.05, 2.0))
    @settings(max_examples=25, deadline=None)
    def test_property_poisson_arrivals_deterministic(self, seed, rate):
        from repro.workload import poisson_arrivals

        first = poisson_arrivals(rate, 50.0, seed=seed)
        second = poisson_arrivals(rate, 50.0, seed=seed)
        assert first == second
        assert all(0.0 <= t < 50.0 for t in first)
        assert first == sorted(first)

    @given(st.integers(0, 10**6), st.integers(1, 40))
    @settings(max_examples=25, deadline=None)
    def test_property_mix_sampling_deterministic(self, seed, count):
        from repro.workload import QueryMix, sample_specs

        mix = QueryMix.paper(cardinalities=(200,), relations=4)
        assert sample_specs(mix, count, seed) == sample_specs(mix, count, seed)
        assert all(s in mix.specs for s in sample_specs(mix, count, seed))

    @given(st.integers(0, 10**6))
    @settings(max_examples=5, deadline=None)
    def test_property_same_seed_same_workload_rows(self, seed):
        """Two identically-seeded engine runs emit identical JSONL
        rows — the whole pipeline is deterministic end to end."""
        from repro.workload import (
            QueryMix,
            WorkloadEngine,
            make_arrivals,
            sample_specs,
        )

        def run_once():
            mix = QueryMix.paper(
                cardinalities=(200,), strategies=("SP", "SE"), relations=4
            )
            times = make_arrivals("poisson", 0.5, 30.0, seed)
            specs = sample_specs(mix, len(times), seed)
            engine = WorkloadEngine(8, config=FAST)
            return engine.run_open(list(zip(times, specs))).rows()

        assert run_once() == run_once()

    @given(st.integers(0, 10**6), st.integers(1, 4), st.integers(1, 3))
    @settings(max_examples=5, deadline=None)
    def test_property_closed_loop_budget_respected(
        self, seed, clients, budget
    ):
        from repro.workload import QueryMix, QuerySpec, WorkloadEngine

        mix = QueryMix.single(QuerySpec("left_linear", 200, "SE", 4))
        result = WorkloadEngine(8, config=FAST).run_closed(
            mix, clients, queries_per_client=budget, seed=seed
        )
        assert len(result.records) == clients * budget
        assert all(r.completed is not None for r in result.records)


class TestLocalExecutorProperties:
    @given(st.integers(2, 6), st.sampled_from(STRATEGIES), st.integers(1, 9),
           st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_property_real_execution_matches_oracle(
        self, relations, strategy, processors, seed
    ):
        from repro.core import make_shape, paper_relation_names
        from repro.engine.local import execute_schedule, reference_result
        from repro.relational import make_query_relations

        if processors < relations - 1 and strategy == "FP":
            processors = relations - 1
        names = paper_relation_names(relations)
        data = dict(zip(names, make_query_relations(relations, 60, seed=seed)))
        catalog = Catalog.regular(names, 60)
        tree = make_shape("wide_bushy", names)
        schedule = get_strategy(strategy).schedule(tree, catalog, processors)
        result = execute_schedule(schedule, data)
        assert result.relation.same_bag(reference_result(tree, data))
