"""The real execution engine against the sequential oracle."""

import pytest

from repro.core import SHAPE_NAMES, get_strategy, make_shape
from repro.engine.local import execute_schedule, reference_result
from repro.relational import skew


class TestCorrectness:
    @pytest.mark.parametrize("shape", SHAPE_NAMES)
    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    def test_every_strategy_matches_oracle(
        self, strategy, shape, names6, relations6, catalog6
    ):
        tree = make_shape(shape, names6)
        schedule = get_strategy(strategy).schedule(tree, catalog6, 7)
        result = execute_schedule(schedule, relations6)
        assert result.relation.same_bag(reference_result(tree, relations6))

    @pytest.mark.parametrize("processors", [1, 2, 6, 13])
    def test_processor_count_does_not_change_result(
        self, processors, names6, relations6, catalog6
    ):
        tree = make_shape("wide_bushy", names6)
        reference = reference_result(tree, relations6)
        schedule = get_strategy("FP").schedule(tree, catalog6, max(processors, 5))
        result = execute_schedule(schedule, relations6)
        assert result.relation.same_bag(reference)

    def test_result_cardinality_regular_query(self, names6, relations6, catalog6):
        tree = make_shape("left_linear", names6)
        schedule = get_strategy("SP").schedule(tree, catalog6, 4)
        result = execute_schedule(schedule, relations6)
        assert len(result.relation) == 200


class TestTaskExecutions:
    def test_every_task_reported(self, names6, relations6, catalog6):
        tree = make_shape("right_bushy", names6)
        schedule = get_strategy("RD").schedule(tree, catalog6, 6)
        result = execute_schedule(schedule, relations6)
        assert len(result.tasks) == 5
        for execution, task in zip(result.tasks, schedule.tasks):
            assert len(execution.fragments) == task.parallelism

    def test_intermediate_results_are_wisconsin_sized(
        self, names6, relations6, catalog6
    ):
        """Section 4.1: every intermediate result equals the operand
        cardinality (one-to-one joins)."""
        tree = make_shape("left_linear", names6)
        schedule = get_strategy("SP").schedule(tree, catalog6, 4)
        result = execute_schedule(schedule, relations6)
        for execution in result.tasks:
            assert sum(execution.fragment_sizes()) == 200

    def test_fragments_not_too_skewed(self, names6, relations6, catalog6):
        """The simulator's fluid model assumes near-uniform fragments."""
        tree = make_shape("wide_bushy", names6)
        schedule = get_strategy("SP").schedule(tree, catalog6, 4)
        result = execute_schedule(schedule, relations6)
        for execution in result.tasks:
            assert skew(execution.fragments) < 1.6

    def test_input_sizes_recorded(self, names6, relations6, catalog6):
        tree = make_shape("left_linear", names6)
        schedule = get_strategy("SP").schedule(tree, catalog6, 2)
        result = execute_schedule(schedule, relations6)
        first = result.tasks[0]
        total_left = sum(left for left, _ in first.input_sizes)
        assert total_left == 200


class TestErrors:
    def test_missing_relation(self, names6, relations6, catalog6):
        tree = make_shape("left_linear", names6)
        schedule = get_strategy("SP").schedule(tree, catalog6, 2)
        with pytest.raises(KeyError, match="not supplied"):
            execute_schedule(schedule, {"R0": relations6["R0"]})
