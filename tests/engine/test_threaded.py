"""The threaded dataflow executor (functional concurrency check)."""

import pytest

from repro.core import Catalog, get_strategy, make_shape
from repro.engine import reference_result
from repro.engine.natural import natural_reference
from repro.engine.threaded import ThreadedExecutor, execute_threaded
from repro.relational.query import wisconsin_resolution


class TestWisconsinQuery:
    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    def test_matches_oracle(self, strategy, names6, relations6, catalog6):
        tree = make_shape("wide_bushy", names6)
        schedule = get_strategy(strategy).schedule(tree, catalog6, 6)
        result = execute_threaded(
            schedule, relations6, timeout=30, resolve=wisconsin_resolution
        )
        assert result.same_bag(reference_result(tree, relations6))

    def test_pipelined_shapes(self, names6, relations6, catalog6):
        """RD and FP stream tuples between live threads."""
        for shape in ("right_linear", "right_bushy"):
            tree = make_shape(shape, names6)
            reference = reference_result(tree, relations6)
            for strategy in ("RD", "FP"):
                schedule = get_strategy(strategy).schedule(tree, catalog6, 5)
                result = execute_threaded(
                    schedule, relations6, timeout=30,
                    resolve=wisconsin_resolution,
                )
                assert result.same_bag(reference)

    def test_single_processor(self, names6, relations6, catalog6):
        tree = make_shape("left_linear", names6)
        schedule = get_strategy("SP").schedule(tree, catalog6, 1)
        result = execute_threaded(
            schedule, relations6, timeout=30, resolve=wisconsin_resolution
        )
        assert len(result) == 200


class TestNaturalQuery:
    def test_star_schema(self):
        import random

        from repro.core.trees import Join, Leaf
        from repro.relational import Relation, Schema

        rng = random.Random(2)
        relations = {
            "fact": Relation(
                Schema.ints("f", "k1", "k2"),
                [(i, rng.randrange(8), rng.randrange(4)) for i in range(120)],
            ),
            "d1": Relation(Schema.ints("k1", "v1"), [(i, i) for i in range(8)]),
            "d2": Relation(Schema.ints("k2", "v2"), [(i, i) for i in range(4)]),
        }
        tree = Join(Join(Leaf("fact"), Leaf("d1")), Leaf("d2"))
        catalog = Catalog({"fact": 120, "d1": 8, "d2": 4})
        reference = natural_reference(tree, relations)
        for strategy in ("SP", "FP"):
            schedule = get_strategy(strategy).schedule(tree, catalog, 3)
            result = execute_threaded(schedule, relations, timeout=30)
            assert result.same_bag(reference)


class TestMechanics:
    def test_timeout_raises(self, names6, relations6, catalog6):
        tree = make_shape("left_linear", names6)
        schedule = get_strategy("SP").schedule(tree, catalog6, 2)
        executor = ThreadedExecutor(
            schedule, relations6, resolve=wisconsin_resolution
        )
        with pytest.raises(TimeoutError):
            executor.run(timeout=0.0)

    def test_bounded_queues_do_not_deadlock(self, names6, relations6, catalog6):
        """Store-and-forward through tiny queues must still complete
        (the done-before-forward ordering)."""
        tree = make_shape("left_linear", names6)
        schedule = get_strategy("SP").schedule(tree, catalog6, 2)
        executor = ThreadedExecutor(
            schedule, relations6, queue_capacity=4,
            resolve=wisconsin_resolution,
        )
        result = executor.run(timeout=30)
        assert len(result) == 200
