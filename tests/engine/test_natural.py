"""Generalized (natural-join) parallel execution on real data."""

import random

import pytest

from repro.core import Catalog, get_strategy
from repro.core.trees import Join, Leaf
from repro.engine.natural import execute_natural_schedule, natural_reference
from repro.relational import Relation, Schema


@pytest.fixture(scope="module")
def star_database():
    rng = random.Random(11)
    dims = {
        "d1": Relation(Schema.ints("k1", "v1"), [(i, i * 2) for i in range(20)]),
        "d2": Relation(Schema.ints("k2", "v2"), [(i, i * 3) for i in range(10)]),
    }
    fact = Relation(
        Schema.ints("f", "k1", "k2"),
        [(i, rng.randrange(20), rng.randrange(10)) for i in range(300)],
    )
    return {"fact": fact, **dims}


@pytest.fixture(scope="module")
def star_tree():
    return Join(Join(Leaf("fact"), Leaf("d1")), Leaf("d2"))


@pytest.fixture(scope="module")
def star_catalog():
    return Catalog({"fact": 300, "d1": 20, "d2": 10})


class TestNaturalExecution:
    @pytest.mark.parametrize("strategy", ["SP", "SE", "RD", "FP"])
    @pytest.mark.parametrize("processors", [2, 5, 9])
    def test_matches_oracle(
        self, strategy, processors, star_database, star_tree, star_catalog
    ):
        schedule = get_strategy(strategy).schedule(
            star_tree, star_catalog, processors
        )
        execution = execute_natural_schedule(schedule, star_database)
        reference = natural_reference(star_tree, star_database)
        assert execution.relation.same_bag(reference)

    def test_result_schema(self, star_database, star_tree, star_catalog):
        schedule = get_strategy("SP").schedule(star_tree, star_catalog, 3)
        execution = execute_natural_schedule(schedule, star_database)
        assert execution.relation.schema.names() == (
            "f", "k1", "k2", "v1", "v2",
        )

    def test_fragments_partition_result(
        self, star_database, star_tree, star_catalog
    ):
        schedule = get_strategy("FP").schedule(star_tree, star_catalog, 4)
        execution = execute_natural_schedule(schedule, star_database)
        root = schedule.tasks[-1].index
        total = sum(f.cardinality() for f in execution.fragments_by_task[root])
        assert total == execution.relation.cardinality() == 300

    def test_build_side_right_still_correct(
        self, star_database, star_tree, star_catalog
    ):
        from repro.core import InputSpec, JoinTask, ParallelSchedule
        from repro.core.trees import joins_postorder

        j0, j1 = joins_postorder(star_tree)
        tasks = [
            JoinTask(
                index=0, join=j0, processors=(0, 1), algorithm="simple",
                left_input=InputSpec("base", "fact"),
                right_input=InputSpec("base", "d1"),
                build_side="right",
            ),
            JoinTask(
                index=1, join=j1, processors=(0, 1), algorithm="simple",
                left_input=InputSpec("materialized", 0),
                right_input=InputSpec("base", "d2"),
                start_after=(0,),
                build_side="right",
            ),
        ]
        schedule = ParallelSchedule("X", star_tree, 2, tasks).validate()
        execution = execute_natural_schedule(schedule, star_database)
        assert execution.relation.same_bag(
            natural_reference(star_tree, star_database)
        )


class TestSnowflake:
    def test_example_module_end_to_end(self):
        """The snowflake example's core path, as a regression test."""
        import examples.snowflake_query as snowflake

        graph = snowflake.foreign_key_graph()
        from repro.optimizer import two_phase_optimize
        from repro.sim import MachineConfig

        plan = two_phase_optimize(
            graph, 12,
            config=MachineConfig(
                tuple_unit=0.001, process_startup=0.005, handshake=0.005,
                network_latency=0.02, batches=6,
            ),
        )
        database = snowflake.build_database()
        execution = execute_natural_schedule(plan.schedule, database)
        assert execution.relation.same_bag(
            natural_reference(plan.tree, database)
        )
