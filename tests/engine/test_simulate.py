"""The simulate_* front ends and cross-strategy behaviour."""


from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.engine.simulate import simulate_schedule, simulate_strategy
from repro.sim import MachineConfig

NAMES = paper_relation_names(10)
CATALOG = Catalog.regular(NAMES, 2000)


class TestFrontEnds:
    def test_simulate_strategy_by_name(self, fast_config):
        result = simulate_strategy(
            make_shape("wide_bushy", NAMES), CATALOG, "SE", 20, config=fast_config
        )
        assert result.strategy == "SE"
        assert result.processors == 20

    def test_simulate_strategy_instance(self, fast_config):
        from repro.core.strategies import SequentialParallel

        result = simulate_strategy(
            make_shape("left_linear", NAMES), CATALOG, SequentialParallel(), 20,
            config=fast_config,
        )
        assert result.strategy == "SP"

    def test_simulate_schedule(self, fast_config):
        schedule = get_strategy("FP").schedule(
            make_shape("right_bushy", NAMES), CATALOG, 20
        )
        result = simulate_schedule(schedule, CATALOG, config=fast_config)
        assert result.response_time > 0

    def test_default_config_is_paper(self):
        result = simulate_strategy(
            make_shape("left_linear", NAMES), CATALOG, "FP", 20
        )
        assert result.config == MachineConfig.paper()


class TestPaperPhenomena:
    """The Section 3.5 tradeoffs, visible in single simulations."""

    def test_startup_hurts_sp_more_than_fp(self, fast_config):
        heavy_startup = fast_config.scaled(process_startup=0.1)
        tree = make_shape("wide_bushy", NAMES)
        sp_light = simulate_strategy(tree, CATALOG, "SP", 40, config=fast_config)
        sp_heavy = simulate_strategy(tree, CATALOG, "SP", 40, config=heavy_startup)
        fp_light = simulate_strategy(tree, CATALOG, "FP", 40, config=fast_config)
        fp_heavy = simulate_strategy(tree, CATALOG, "FP", 40, config=heavy_startup)
        sp_delta = sp_heavy.response_time - sp_light.response_time
        fp_delta = fp_heavy.response_time - fp_light.response_time
        # SP starts 9x the processes, so it pays ~9x the extra startup.
        assert sp_delta > 5 * fp_delta

    def test_coordination_hurts_sp_more_than_fp(self, fast_config):
        heavy_hs = fast_config.scaled(handshake=0.1)
        tree = make_shape("wide_bushy", NAMES)
        sp_delta = (
            simulate_strategy(tree, CATALOG, "SP", 40, config=heavy_hs).response_time
            - simulate_strategy(tree, CATALOG, "SP", 40, config=fast_config).response_time
        )
        fp_delta = (
            simulate_strategy(tree, CATALOG, "FP", 40, config=heavy_hs).response_time
            - simulate_strategy(tree, CATALOG, "FP", 40, config=fast_config).response_time
        )
        assert sp_delta > 3 * fp_delta

    def test_pipeline_delay_hits_fp_on_linear_trees(self, fast_config):
        """Higher per-batch latency slows FP's pipeline, not SP's
        phase-wise execution, on a linear tree."""
        slow_net = fast_config.scaled(network_latency=0.8)
        tree = make_shape("right_linear", NAMES)
        fp_delta = (
            simulate_strategy(tree, CATALOG, "FP", 40, config=slow_net).response_time
            - simulate_strategy(tree, CATALOG, "FP", 40, config=fast_config).response_time
        )
        sp_delta = (
            simulate_strategy(tree, CATALOG, "SP", 40, config=slow_net).response_time
            - simulate_strategy(tree, CATALOG, "SP", 40, config=fast_config).response_time
        )
        assert fp_delta > sp_delta

    def test_fp_beats_sp_at_high_parallelism(self, fast_config):
        tree = make_shape("wide_bushy", NAMES)
        fp = simulate_strategy(tree, CATALOG, "FP", 80, config=fast_config)
        sp = simulate_strategy(tree, CATALOG, "SP", 80, config=fast_config)
        assert fp.response_time < sp.response_time
