"""Utilization diagrams and the idealized Section 3 figures."""

import pytest

from repro.core import example_tree
from repro.engine import (
    busy_fractions,
    ideal_diagram,
    label_map_for,
    utilization_diagram,
)
from repro.engine.ideal import ideal_simulation


@pytest.fixture(scope="module")
def ideal_results():
    return {
        name: ideal_simulation(example_tree(), name, 10)
        for name in ("SP", "SE", "RD", "FP")
    }


class TestIdealSimulations:
    def test_sp_has_perfect_utilization(self, ideal_results):
        """Figure 3: SP's idealized load balancing is perfect."""
        assert ideal_results["SP"].utilization() > 0.999

    def test_se_suffers_discretization(self, ideal_results):
        """Figure 4: even idealized SE cannot balance perfectly (the
        4/6 split of joins 3 and 4)."""
        assert ideal_results["SE"].utilization() < 0.995

    def test_fp_trades_utilization_for_pipelining(self, ideal_results):
        assert ideal_results["FP"].utilization() < ideal_results["SP"].utilization()

    def test_total_work_equals_labels(self, ideal_results):
        """Work labels 1+5+3+4 = 13 machine-seconds in every strategy."""
        for result in ideal_results.values():
            assert result.busy_time() == pytest.approx(13.0, rel=1e-6)

    def test_sp_response_is_serial_sum_over_processors(self, ideal_results):
        assert ideal_results["SP"].response_time == pytest.approx(1.3, rel=1e-6)

    def test_sp_runs_join4_first(self, ideal_results):
        """Figure 3: processors first work together on join 4."""
        timings = ideal_results["SP"].task_timings
        assert timings[0].label == "4"
        assert timings[0].completion <= min(t.completion for t in timings)


class TestDiagrams:
    def test_diagram_shape(self, ideal_results):
        text = utilization_diagram(ideal_results["SP"], width=40)
        lines = text.splitlines()
        assert len(lines) == 2 + 10 + 1  # header + axis + 10 procs + axis
        body = lines[2:-1]
        assert all(len(line) == len(body[0]) for line in body)

    def test_labels_mapped(self, ideal_results):
        label_map = label_map_for(example_tree())
        text = utilization_diagram(
            ideal_results["SP"], width=40, label_map=label_map
        )
        for label in "1345":
            assert label in text

    def test_idle_marker_present_for_fp(self, ideal_results):
        text = utilization_diagram(ideal_results["FP"], width=40)
        assert "." in text

    def test_ideal_diagram_convenience(self):
        text = ideal_diagram("SE", 10, width=30)
        assert "SE on 10 processors" in text

    def test_rows_highest_processor_first(self, ideal_results):
        text = utilization_diagram(ideal_results["SP"], width=20)
        rows = [l for l in text.splitlines() if "|" in l and not l.startswith("    +")]
        idents = [int(row.split("|")[0]) for row in rows]
        assert idents == sorted(idents, reverse=True)


class TestBusyFractions:
    def test_sp_all_processors_equal(self, ideal_results):
        fractions = busy_fractions(ideal_results["SP"])
        assert len(fractions) == 10
        values = list(fractions.values())
        assert max(values) - min(values) < 1e-9

    def test_fractions_within_unit(self, ideal_results):
        for result in ideal_results.values():
            for fraction in busy_fractions(result).values():
                assert 0.0 <= fraction <= 1.0 + 1e-9
