"""Trace extraction and JSON export."""

import json

import pytest

from repro.core import Catalog, get_strategy, make_shape, paper_relation_names
from repro.engine.trace import (
    critical_path,
    from_json,
    spans_of,
    task_marks,
    to_json,
)
from repro.sim.run import simulate

NAMES = paper_relation_names(6)
CATALOG = Catalog.regular(NAMES, 600)


@pytest.fixture(scope="module")
def sp_result(fast_config):
    tree = make_shape("wide_bushy", NAMES)
    schedule = get_strategy("SP").schedule(tree, CATALOG, 8)
    return simulate(schedule, CATALOG, fast_config)


@pytest.fixture(scope="module")
def fp_result(fast_config):
    tree = make_shape("wide_bushy", NAMES)
    schedule = get_strategy("FP").schedule(tree, CATALOG, 8)
    return simulate(schedule, CATALOG, fast_config)


class TestSpans:
    def test_spans_cover_busy_time(self, sp_result):
        spans = spans_of(sp_result)
        assert sum(s.duration for s in spans) == pytest.approx(
            sp_result.busy_time()
        )

    def test_spans_sorted_by_start(self, sp_result):
        spans = spans_of(sp_result)
        assert all(a.start <= b.start for a, b in zip(spans, spans[1:]))

    def test_kinds(self, sp_result):
        kinds = {s.kind for s in spans_of(sp_result)}
        assert kinds <= {"work", "handshake"}
        assert "work" in kinds

    def test_task_names(self, sp_result):
        tasks = {s.task for s in spans_of(sp_result)}
        assert tasks == {f"J{i}" for i in range(5)}


class TestTaskMarks:
    def test_one_mark_per_task(self, sp_result):
        assert len(task_marks(sp_result)) == 5

    def test_monotone_lifecycle(self, sp_result):
        for mark in task_marks(sp_result):
            assert mark.released <= mark.first_work <= mark.completion


class TestCriticalPath:
    def test_sp_path_is_the_whole_chain(self, sp_result):
        path = critical_path(sp_result)
        assert [m.index for m in path] == [4, 3, 2, 1, 0]

    def test_fp_path_is_short(self, fp_result):
        path = critical_path(fp_result)
        assert len(path) == 1
        assert path[0].completion == pytest.approx(fp_result.response_time)


class TestJson:
    def test_roundtrip(self, sp_result):
        payload = from_json(to_json(sp_result))
        assert payload["meta"]["strategy"] == "SP"
        assert len(payload["tasks"]) == 5
        assert payload["meta"]["response_time"] == pytest.approx(
            sp_result.response_time
        )

    def test_valid_json(self, sp_result):
        json.loads(to_json(sp_result, indent=2))

    def test_from_json_validates(self):
        with pytest.raises(ValueError, match="missing"):
            from_json('{"meta": {}}')

    def test_exported_spans_match_intervals(self, sp_result):
        """export → json.loads → the spans are exactly the simulation's
        busy intervals, label included (task + kind reconstructs it)."""
        payload = json.loads(to_json(sp_result))
        exported = sorted(
            (
                s["processor"],
                s["start"],
                s["end"],
                s["task"] + (":hs" if s["kind"] == "handshake" else ""),
            )
            for s in payload["spans"]
        )
        actual = sorted(
            (processor, start, end, label)
            for processor, intervals in sp_result.intervals.items()
            for start, end, label in intervals
        )
        assert exported == actual

    def test_meta_matches_result(self, fp_result):
        payload = json.loads(to_json(fp_result))
        assert payload["meta"]["processors"] == fp_result.processors
        assert payload["meta"]["events"] == fp_result.events
        assert payload["meta"]["utilization"] == pytest.approx(
            fp_result.utilization()
        )


class TestGanttConsistency:
    @pytest.mark.parametrize("which", ["sp_result", "fp_result"])
    def test_spans_non_overlapping_per_processor(self, which, request):
        """A processor does one thing at a time: its Gantt spans never
        overlap (a hosted/shared-pool regression guard)."""
        result = request.getfixturevalue(which)
        by_processor = {}
        for span in spans_of(result):
            by_processor.setdefault(span.processor, []).append(span)
        for spans in by_processor.values():
            spans.sort(key=lambda s: s.start)
            for before, after in zip(spans, spans[1:]):
                assert before.end <= after.start + 1e-9

    def test_spans_have_positive_duration(self, sp_result):
        assert all(s.duration > 0 for s in spans_of(sp_result))
